//! The Vivaldi simulation world.
//!
//! Each node fires one probe per tick (with a per-node phase so probes
//! interleave), aimed at a random member of its spring set. The probed
//! node's response — honest state or an adversarial [`Lie`] — travels
//! back as a simulator message arriving after the *measured* RTT (true RTT
//! plus adversarial delay plus benign jitter), at which point the victim
//! applies the Vivaldi update rule.
//!
//! State is stored struct-of-arrays (`coords`, `errors`, `neighbors`,
//! `malicious`) so the whole coordinate table can be lent to adversaries as
//! the knowledge oracle without copies.

use crate::adversary::{AttackStrategy, CoordView, Lie, Probe, Protocol, Scenario};
use crate::config::VivaldiConfig;
use crate::defense::{
    Defense, DefenseStats, DefenseStrategy, Provenance, Update as DefenseUpdate, Verdict,
};
use crate::neighbors::select_neighbors;
use crate::node::vivaldi_update_scaled;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use vcoord_chaos::{ChaosCounters, ChaosPlan, ChaosState, ProbeFate};
use vcoord_netsim::{time, Engine, NodeId, Scheduler, SeedStream, World};
use vcoord_space::{Coord, Space};
use vcoord_topo::RttMatrix;

/// Timer tag: a node's probe tick.
const TAG_PROBE: u64 = 0;

/// Retry timers are odd tags packing the attempt and target peer:
/// `1 | attempt << 1 | peer << 8`. Only scheduled when chaos is installed
/// and a probe timed out, so a chaos-free run sees `TAG_PROBE` only.
const TAG_RETRY_BIT: u64 = 1;

fn retry_tag(peer: usize, attempt: u32) -> u64 {
    TAG_RETRY_BIT | (u64::from(attempt) << 1) | ((peer as u64) << 8)
}

fn retry_tag_decode(tag: u64) -> (usize, u32) {
    ((tag >> 8) as usize, ((tag >> 1) & 0x7f) as u32)
}

/// A probe response in flight.
#[derive(Debug, Clone)]
struct Sample {
    coord: Coord,
    error: f64,
    rtt: f64,
}

/// Probe/lie counters, exposed for tests and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Probes initiated by honest nodes.
    pub probes_sent: u64,
    /// Probes lost to the benign link fault model.
    pub probes_lost: u64,
    /// Samples applied to honest node state.
    pub samples_applied: u64,
    /// Responses served by the adversary (lies).
    pub lies_served: u64,
    /// Negative adversarial delays clamped (threat-model violations).
    pub delay_clamped: u64,
}

struct VivaldiWorld {
    config: VivaldiConfig,
    matrix: RttMatrix,
    coords: Vec<Coord>,
    errors: Vec<f64>,
    neighbors: Vec<Vec<usize>>,
    malicious: Vec<bool>,
    scenario: Option<Scenario>,
    defense: Option<Defense>,
    /// Nodes currently banned by the deployed defense (set on a ban event
    /// from the reputation channel, cleared on a reinstate event). Vivaldi
    /// deliberately keeps *probing* quarantined neighbors — the defense
    /// rejects their samples, but the evidence stream is what lets a
    /// decaying ban observe reform and forgive; cutting the probes (as
    /// NPS's membership-mediated banning does) would make forgiveness
    /// blind. The flags are the neighbor-set view of the ban state for the
    /// harness and diagnostics.
    quarantined: Vec<bool>,
    /// Reusable reputation-event drain buffers.
    rep_banned: Vec<usize>,
    rep_reinstated: Vec<usize>,
    /// Installed fault schedule, if any. `None` costs one discriminant
    /// check per probe and keeps the run bitwise identical to a build
    /// without the chaos subsystem (all chaos randomness lives on the
    /// plan's own stream).
    chaos: Option<ChaosState>,
    /// Consecutive exhausted probe cycles per neighbor-list slot, parallel
    /// to `neighbors`; sized on [`VivaldiSim::install_chaos`], empty (and
    /// untouched) otherwise. At `evict_after` strikes the stale neighbor
    /// is shed and a replacement drawn from the chaos stream.
    fail: Vec<Vec<u32>>,
    probe_rng: ChaCha12Rng,
    update_rng: ChaCha12Rng,
    adv_rng: ChaCha12Rng,
    counters: Counters,
}

impl World for VivaldiWorld {
    type Payload = Sample;

    fn on_timer(&mut self, sched: &mut Scheduler<Sample>, node: NodeId, tag: u64) {
        if tag & TAG_RETRY_BIT != 0 {
            // A probe retry after a chaos timeout: re-probe the specific
            // peer unless the prober meanwhile crashed or turned.
            let (peer, attempt) = retry_tag_decode(tag);
            if self.malicious[node] {
                return;
            }
            if let Some(chaos) = self.chaos.as_ref() {
                if chaos.is_down(node) {
                    return;
                }
            }
            self.send_probe(sched, node, peer, attempt);
            return;
        }
        debug_assert_eq!(tag, TAG_PROBE);
        // Keep ticking (even for malicious nodes, so a cured node could
        // resume; cheap either way).
        sched.timer_after(self.config.tick_ms, node, TAG_PROBE);
        if let Some(chaos) = self.chaos.as_mut() {
            // Apply churn that came due. Restarted nodes rejoin from the
            // cold-start state; their strike counts are wiped.
            for &r in chaos.advance(sched.now()) {
                if !self.malicious[r] {
                    self.coords[r] = self.config.space.origin();
                    self.errors[r] = self.config.initial_error;
                }
                self.fail[r].fill(0);
            }
            if chaos.is_down(node) {
                return; // crashed nodes neither probe nor tick forward state
            }
        }
        if self.malicious[node] {
            return; // infected nodes no longer maintain their own position
        }
        let Some(&peer) = self.neighbors[node].choose(&mut self.probe_rng) else {
            return;
        };
        self.send_probe(sched, node, peer, 0);
    }

    fn on_message(&mut self, sched: &mut Scheduler<Sample>, from: NodeId, to: NodeId, s: Sample) {
        if self.malicious[to] {
            return; // infected after the probe left: ignore the sample
        }
        if let Some(chaos) = self.chaos.as_ref() {
            if chaos.is_down(to) {
                return; // crashed while the response was in flight
            }
        }
        self.apply_sample(sched, from, to, s);
    }
}

impl VivaldiWorld {
    /// One probe attempt from `node` to `peer` (`attempt` 0 is the tick's
    /// regular probe; higher attempts are chaos retries). Chaos-free runs
    /// always take the `attempt == 0` path with no chaos branch taken.
    fn send_probe(
        &mut self,
        sched: &mut Scheduler<Sample>,
        node: usize,
        peer: usize,
        attempt: u32,
    ) {
        self.counters.probes_sent += 1;

        let base_rtt = self.matrix.rtt(node, peer);
        let Some(rtt) = self.config.link.apply(base_rtt, &mut self.probe_rng) else {
            self.counters.probes_lost += 1;
            return;
        };
        let rtt = match self.chaos.as_mut() {
            None => rtt,
            Some(chaos) => match chaos.probe_fate(node, peer, sched.now(), rtt) {
                ProbeFate::Delivered(rtt) => rtt,
                ProbeFate::Timeout => {
                    self.handle_timeout(sched, node, peer, attempt);
                    return;
                }
            },
        };
        if self.chaos.is_some() {
            // The peer answered: clear its staleness strikes.
            if let Some(idx) = self.neighbors[node].iter().position(|&p| p == peer) {
                self.fail[node][idx] = 0;
            }
        }

        let response =
            if let (true, Some(scenario)) = (self.malicious[peer], self.scenario.as_mut()) {
                let view = CoordView {
                    space: &self.config.space,
                    coords: &self.coords,
                    errors: &self.errors,
                    layer: &[],
                    malicious: &self.malicious,
                    is_ref: &[],
                    round: sched.now() / self.config.tick_ms.max(1),
                    now_ms: sched.now(),
                    params: Protocol {
                        cc: self.config.cc,
                        probe_threshold_ms: f64::INFINITY,
                    },
                };
                scenario.respond(
                    Probe {
                        attacker: peer,
                        victim: node,
                        rtt,
                    },
                    &view,
                    &mut self.adv_rng,
                )
            } else {
                None
            };

        let (coord, error, measured) = match response {
            Some(Lie {
                coord,
                error,
                delay_ms,
            }) => {
                self.counters.lies_served += 1;
                let delay = if delay_ms < 0.0 {
                    // Threat model: probes can be delayed, never shortened.
                    self.counters.delay_clamped += 1;
                    log::debug!("vivaldi: adversary tried to shorten a probe; clamped");
                    0.0
                } else {
                    delay_ms
                };
                (coord, error, rtt + delay)
            }
            None => (self.coords[peer].clone(), self.errors[peer], rtt),
        };

        sched.deliver_after(
            time::from_ms_f64(measured),
            peer,
            node,
            Sample {
                coord,
                error,
                rtt: measured,
            },
        );
    }

    /// A probe attempt to `peer` timed out: schedule the next
    /// exponential-backoff retry, or — once the cycle is exhausted — put a
    /// strike on the neighbor and evict it for staleness at the policy
    /// threshold, drawing a replacement from the chaos stream so the
    /// spring count survives churn.
    fn handle_timeout(
        &mut self,
        sched: &mut Scheduler<Sample>,
        node: usize,
        peer: usize,
        attempt: u32,
    ) {
        let chaos = self.chaos.as_mut().expect("timeout without chaos");
        if attempt < chaos.max_retries() {
            chaos.note_retry();
            let delay = chaos.retry_delay_ms(attempt + 1);
            sched.timer_after(time::from_ms_f64(delay), node, retry_tag(peer, attempt + 1));
            return;
        }
        let Some(idx) = self.neighbors[node].iter().position(|&p| p == peer) else {
            return; // already evicted by an earlier cycle
        };
        self.fail[node][idx] += 1;
        if self.fail[node][idx] < chaos.evict_after() {
            return;
        }
        self.neighbors[node].swap_remove(idx);
        self.fail[node].swap_remove(idx);
        chaos.note_eviction(node, peer, sched.now());
        // Exclude the dead peer itself from the replacement draw.
        self.neighbors[node].push(peer);
        let replacement = chaos.replacement(self.matrix.len(), node, &self.neighbors[node]);
        self.neighbors[node].pop();
        if let Some(repl) = replacement {
            self.neighbors[node].push(repl);
            self.fail[node].push(0);
        }
    }

    fn apply_sample(&mut self, sched: &mut Scheduler<Sample>, from: NodeId, to: NodeId, s: Sample) {
        // Screen the sample through the deployed defense (if any) before
        // the update rule sees it. No deployment and a `NoDefense`
        // deployment both leave `scale = 1.0`, which is bit-identical to
        // the undefended path.
        let scale = match self.defense.as_mut() {
            None => 1.0,
            Some(defense) => {
                let verdict = defense.inspect(
                    &self.config.space,
                    &self.coords[to],
                    DefenseUpdate {
                        observer: to,
                        remote: from,
                        reported_coord: &s.coord,
                        reported_error: s.error,
                        rtt: s.rtt,
                        round: sched.now() / self.config.tick_ms.max(1),
                        now_ms: sched.now(),
                        provenance: Provenance::Normal,
                    },
                );
                // Route the reputation side channel into the quarantine
                // flags (no-op for strategies that emit no events).
                self.rep_banned.clear();
                self.rep_reinstated.clear();
                defense.drain_reputation(&mut self.rep_banned, &mut self.rep_reinstated);
                for &b in &self.rep_banned {
                    self.quarantined[b] = true;
                }
                for &r in &self.rep_reinstated {
                    self.quarantined[r] = false;
                }
                // Arms-race feedback: a malicious node can observe whether
                // its report took hold, so the scenario learns the verdict.
                if self.malicious[from] {
                    if let Some(scenario) = self.scenario.as_mut() {
                        scenario.feedback(from, to, verdict.is_flag());
                    }
                }
                if verdict == Verdict::Reject {
                    return; // dropped: coordinate and error untouched
                }
                verdict.factor()
            }
        };
        let applied = vivaldi_update_scaled(
            &self.config.space,
            self.config.cc,
            self.config.error_clamp,
            &mut self.coords[to],
            &mut self.errors[to],
            &s.coord,
            s.error,
            s.rtt,
            scale,
            &mut self.update_rng,
        );
        if applied.is_some() {
            self.counters.samples_applied += 1;
            vcoord_obs::counter_add(vcoord_obs::metric_id!("vivaldi.samples_applied"), 1);
        }
    }
}

/// A complete Vivaldi system running on the discrete-event engine.
pub struct VivaldiSim {
    engine: Engine<Sample>,
    world: VivaldiWorld,
}

impl VivaldiSim {
    /// Build a system over `matrix` with per-node phase-jittered probe
    /// timers. All coordinates start at the origin (Vivaldi's cold start).
    ///
    /// # Panics
    /// Panics if the matrix has fewer than 2 nodes.
    pub fn new(matrix: RttMatrix, config: VivaldiConfig, seeds: &SeedStream) -> VivaldiSim {
        assert!(matrix.len() >= 2, "need at least two nodes");
        let n = matrix.len();
        let neighbors: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let mut rng = seeds.rng_indexed("vivaldi/neighbors", i as u64);
                select_neighbors(
                    &matrix,
                    i,
                    config.neighbors,
                    config.near_neighbors,
                    config.near_cutoff_ms,
                    &mut rng,
                )
            })
            .collect();

        let world = VivaldiWorld {
            coords: vec![config.space.origin(); n],
            errors: vec![config.initial_error; n],
            neighbors,
            malicious: vec![false; n],
            scenario: None,
            defense: None,
            quarantined: vec![false; n],
            rep_banned: Vec::new(),
            rep_reinstated: Vec::new(),
            chaos: None,
            fail: Vec::new(),
            probe_rng: seeds.rng("vivaldi/probe"),
            update_rng: seeds.rng("vivaldi/update"),
            adv_rng: seeds.rng("vivaldi/adversary"),
            counters: Counters::default(),
            matrix,
            config,
        };

        let mut engine = Engine::new();
        let mut phase_rng = seeds.rng("vivaldi/phase");
        for i in 0..n {
            let phase = phase_rng.gen_range(0..world.config.tick_ms.max(1));
            engine.scheduler().timer_at(phase, i, TAG_PROBE);
        }
        VivaldiSim { engine, world }
    }

    /// Advance the simulation by `n` ticks.
    pub fn run_ticks(&mut self, n: u64) {
        let _span = vcoord_obs::span(vcoord_obs::metric_id!("vivaldi.run_ticks_ns"));
        vcoord_obs::counter_add(vcoord_obs::metric_id!("vivaldi.ticks"), n);
        let target = self.engine.now() + n * self.world.config.tick_ms;
        self.engine.run_until(&mut self.world, target);
    }

    /// Current tick count (floor of now / tick length).
    pub fn now_ticks(&self) -> u64 {
        self.engine.now() / self.world.config.tick_ms
    }

    /// Current simulated time in ms.
    pub fn now_ms(&self) -> u64 {
        self.engine.now()
    }

    /// The embedding space.
    pub fn space(&self) -> &Space {
        &self.world.config.space
    }

    /// The simulation parameters.
    pub fn config(&self) -> &VivaldiConfig {
        &self.world.config
    }

    /// The latency substrate.
    pub fn matrix(&self) -> &RttMatrix {
        &self.world.matrix
    }

    /// Current coordinates of every node (truth, not reported values).
    pub fn coords(&self) -> &[Coord] {
        &self.world.coords
    }

    /// Current local error estimates.
    pub fn errors(&self) -> &[f64] {
        &self.world.errors
    }

    /// Whether each node is malicious.
    pub fn malicious(&self) -> &[bool] {
        &self.world.malicious
    }

    /// Ids of currently honest nodes.
    pub fn honest_nodes(&self) -> Vec<usize> {
        (0..self.world.matrix.len())
            .filter(|&i| !self.world.malicious[i])
            .collect()
    }

    /// Probe/lie counters.
    pub fn counters(&self) -> Counters {
        self.world.counters
    }

    /// Pick `fraction` of the population uniformly at random as attackers
    /// (without yet activating them). Deterministic given the seed stream.
    pub fn pick_attackers(&mut self, fraction: f64) -> Vec<usize> {
        let n = self.world.matrix.len();
        let k = ((n as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
        let mut ids: Vec<usize> = (0..n).collect();
        ids.shuffle(&mut self.world.adv_rng);
        ids.truncate(k);
        ids.sort_unstable();
        ids
    }

    /// Turn `attackers` malicious under `strategy`, in place — the paper's
    /// *injection* scenario (attack a converged system, §5.2).
    ///
    /// The strategy's [`AttackStrategy::inject`] hook runs immediately with
    /// the current (converged) state as its knowledge oracle; all
    /// subsequent probes of malicious nodes route through the resulting
    /// [`Scenario`].
    pub fn inject_adversary(&mut self, attackers: &[usize], strategy: Box<dyn AttackStrategy>) {
        for &a in attackers {
            self.world.malicious[a] = true;
        }
        let view = CoordView {
            space: &self.world.config.space,
            coords: &self.world.coords,
            errors: &self.world.errors,
            layer: &[],
            malicious: &self.world.malicious,
            is_ref: &[],
            round: self.engine.now() / self.world.config.tick_ms.max(1),
            now_ms: self.engine.now(),
            params: Protocol {
                cc: self.world.config.cc,
                probe_threshold_ms: f64::INFINITY,
            },
        };
        vcoord_obs::event(
            vcoord_obs::metric_id!("vivaldi.inject"),
            view.round,
            vcoord_obs::NO_NODE,
            attackers.len() as f64,
        );
        let mut scenario = Scenario::new(strategy);
        scenario.inject(attackers, &view, &mut self.world.adv_rng);
        self.world.scenario = Some(scenario);
        log::trace!(
            "vivaldi: injected {} attackers at t={}ms",
            attackers.len(),
            self.engine.now()
        );
    }

    /// The running attack scenario, if one was injected (its [`Collusion`]
    /// state is observable for diagnostics and tests).
    ///
    /// [`Collusion`]: vcoord_attackkit::Collusion
    pub fn scenario(&self) -> Option<&Scenario> {
        self.world.scenario.as_ref()
    }

    /// Deploy `strategy` as the system's defense: every sample an honest
    /// node is about to apply is screened through the resulting
    /// [`Defense`] first. Deployable at any time (the harness arms it at
    /// attack-injection time, on the converged system); replaces any
    /// previous deployment, history and accounting included.
    pub fn deploy_defense(&mut self, strategy: Box<dyn DefenseStrategy>) {
        let defense = Defense::new(strategy);
        log::trace!(
            "vivaldi: deployed defense '{}' at t={}ms",
            defense.label(),
            self.engine.now()
        );
        self.world.defense = Some(defense);
        self.world.quarantined.fill(false);
    }

    /// Which nodes the deployed defense currently holds banned, as routed
    /// through the reputation channel (ban events set a flag, reinstate
    /// events clear it). All `false` when no banning strategy is deployed.
    /// Quarantined neighbors keep being probed — see the field docs on the
    /// world struct for why the evidence stream stays open.
    pub fn quarantined(&self) -> &[bool] {
        &self.world.quarantined
    }

    /// The deployed defense, if any (verdict accounting and neighbor
    /// history are observable for diagnostics and the harness).
    pub fn defense(&self) -> Option<&Defense> {
        self.world.defense.as_ref()
    }

    /// Verdict accounting of the deployed defense, if any.
    pub fn defense_stats(&self) -> Option<&DefenseStats> {
        self.world.defense.as_ref().map(|d| d.stats())
    }

    /// Install `plan` as the run's fault schedule, times relative to now
    /// (the harness installs at attack injection, on the converged
    /// system). Replaces any previous plan. An empty plan is inert: it
    /// draws nothing from any stream and the run stays bitwise identical
    /// to one without chaos (pinned by the `chaos_properties` proptests).
    pub fn install_chaos(&mut self, plan: ChaosPlan) {
        let n = self.world.matrix.len();
        log::trace!(
            "vivaldi: installed chaos plan ({} churn events, {} partitions, bursts: {}) at t={}ms",
            plan.churn.len(),
            plan.partitions.len(),
            plan.bursts.is_some(),
            self.engine.now()
        );
        self.world.chaos = Some(ChaosState::new(plan, n, self.engine.now()));
        self.world.fail = self
            .world
            .neighbors
            .iter()
            .map(|ns| vec![0; ns.len()])
            .collect();
    }

    /// The installed fault schedule's runtime state, if any.
    pub fn chaos(&self) -> Option<&ChaosState> {
        self.world.chaos.as_ref()
    }

    /// Fault totals of the installed chaos plan, if any.
    pub fn chaos_counters(&self) -> Option<&ChaosCounters> {
        self.world.chaos.as_ref().map(|c| c.counters())
    }

    /// Current neighbor lists (springs). Chaos staleness eviction mutates
    /// these; without chaos they are fixed at construction.
    pub fn neighbors(&self) -> &[Vec<usize>] {
        &self.world.neighbors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::Honest;
    use vcoord_metrics::EvalPlan;
    use vcoord_topo::{KingLike, KingLikeConfig};

    fn small_sim(n: usize, seed: u64) -> VivaldiSim {
        let seeds = SeedStream::new(seed);
        let matrix = KingLike::new(KingLikeConfig::with_nodes(n)).generate(&mut seeds.rng("topo"));
        VivaldiSim::new(matrix, VivaldiConfig::default(), &seeds)
    }

    #[test]
    fn converges_on_king_like_topology() {
        let mut sim = small_sim(60, 1);
        let plan = EvalPlan::new(&sim.honest_nodes(), &mut SeedStream::new(9).rng("plan"));
        let before = plan.avg_error(sim.coords(), sim.space(), sim.matrix());
        sim.run_ticks(200);
        let after = plan.avg_error(sim.coords(), sim.space(), sim.matrix());
        assert!(
            after < before * 0.2,
            "no convergence: before={before} after={after}"
        );
        assert!(after < 0.6, "converged error too high: {after}");
    }

    #[test]
    fn probes_flow_and_samples_apply() {
        let mut sim = small_sim(20, 2);
        sim.run_ticks(10);
        let c = sim.counters();
        assert!(c.probes_sent >= 150, "probes={}", c.probes_sent);
        assert!(c.samples_applied > 0);
        assert_eq!(c.lies_served, 0);
        assert_eq!(c.probes_lost, 0);
    }

    #[test]
    fn deterministic_runs() {
        let run = |seed| {
            let mut sim = small_sim(30, seed);
            sim.run_ticks(50);
            sim.coords().to_vec()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn honest_injection_is_harmless() {
        let mut sim = small_sim(40, 3);
        sim.run_ticks(150);
        let plan = EvalPlan::new(&sim.honest_nodes(), &mut SeedStream::new(9).rng("plan"));
        let before = plan.avg_error(sim.coords(), sim.space(), sim.matrix());
        let attackers = sim.pick_attackers(0.3);
        assert_eq!(attackers.len(), 12);
        sim.inject_adversary(&attackers, Box::new(Honest));
        sim.run_ticks(100);
        // Evaluate over the still-honest population.
        let plan2 = EvalPlan::new(&sim.honest_nodes(), &mut SeedStream::new(9).rng("plan"));
        let after = plan2.avg_error(sim.coords(), sim.space(), sim.matrix());
        assert!(
            after < before * 2.0 + 0.2,
            "honest adversary degraded system: {before} -> {after}"
        );
    }

    #[test]
    fn malicious_nodes_freeze() {
        let mut sim = small_sim(20, 4);
        sim.run_ticks(50);
        let attackers = sim.pick_attackers(0.25);
        sim.inject_adversary(&attackers, Box::new(Honest));
        let frozen: Vec<Coord> = attackers.iter().map(|&a| sim.coords()[a].clone()).collect();
        sim.run_ticks(30);
        for (k, &a) in attackers.iter().enumerate() {
            assert_eq!(sim.coords()[a], frozen[k], "malicious node moved");
        }
    }

    #[test]
    fn no_defense_deployment_is_bit_identical_to_none() {
        // Deploying the NoDefense strategy must not flip a single
        // coordinate bit relative to an undefended run — this is the
        // sim-level contract behind the golden-figure guarantee.
        let run = |deploy: bool| {
            let mut sim = small_sim(30, 11);
            sim.run_ticks(40);
            if deploy {
                sim.deploy_defense(Box::new(crate::defense::NoDefense));
            }
            let attackers = sim.pick_attackers(0.3);
            sim.inject_adversary(&attackers, Box::new(Honest));
            sim.run_ticks(40);
            (sim.coords().to_vec(), sim.errors().to_vec())
        };
        let (ca, ea) = run(false);
        let (cb, eb) = run(true);
        assert_eq!(ca, cb);
        for (a, b) in ea.iter().zip(&eb) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn dampen_identity_deployment_is_bit_identical_to_none() {
        // A strategy answering Dampen(1.0) for everything rides the scaled
        // update path — which must still be bit-identical to Accept.
        let run = |deploy: bool| {
            let mut sim = small_sim(30, 12);
            sim.run_ticks(30);
            if deploy {
                sim.deploy_defense(Box::new(crate::defense::Dampener::new(1.0)));
            }
            sim.run_ticks(40);
            sim.coords().to_vec()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn rejecting_defense_freezes_victims() {
        // A defense that rejects everything stops all coordinate movement:
        // no sample ever reaches the update rule.
        struct RejectAll;
        impl crate::defense::DefenseStrategy for RejectAll {
            fn inspect_update(
                &mut self,
                _v: &crate::defense::UpdateView<'_>,
                _s: &mut crate::defense::DefenseScratch,
            ) -> Verdict {
                Verdict::Reject
            }
            fn label(&self) -> &'static str {
                "reject-all"
            }
        }
        let mut sim = small_sim(20, 13);
        sim.run_ticks(30);
        sim.deploy_defense(Box::new(RejectAll));
        let frozen = sim.coords().to_vec();
        sim.run_ticks(20);
        assert_eq!(sim.coords(), &frozen[..]);
        let stats = sim.defense_stats().unwrap();
        assert!(stats.rejected > 0);
        assert_eq!(stats.accepted, 0);
    }

    #[test]
    fn decay_drift_cap_quarantines_then_reinstates_a_reformed_attacker() {
        use crate::adversary::{AttackStrategy, CoordView, Lie, Probe};
        use crate::defense::{DriftCap, DriftDecay};
        use rand_chacha::ChaCha12Rng;
        use vcoord_attackkit::Collusion;

        // Attack hard for `attack_rounds` rounds after injection, then
        // behave honestly forever — the minimal reform story.
        struct BurstThenReform {
            attack_rounds: u64,
            injected_at: Option<u64>,
        }
        impl AttackStrategy for BurstThenReform {
            fn inject(
                &mut self,
                _attackers: &[usize],
                _collusion: &mut Collusion,
                view: &CoordView<'_>,
                _rng: &mut ChaCha12Rng,
            ) {
                self.injected_at = Some(view.round);
            }
            fn respond(
                &mut self,
                probe: &Probe,
                _collusion: &mut Collusion,
                view: &CoordView<'_>,
                _rng: &mut ChaCha12Rng,
            ) -> Option<Lie> {
                let start = self.injected_at.unwrap_or(0);
                if view.round.saturating_sub(start) >= self.attack_rounds {
                    return None; // reformed
                }
                // A crude sustained drag: claim to sit 250 ms past the
                // truth along x.
                let mut coord = view.coords[probe.attacker].clone();
                coord.vec[0] += 250.0;
                Some(Lie {
                    coord,
                    error: 0.01,
                    delay_ms: 0.0,
                })
            }
            fn label(&self) -> &'static str {
                "burst-then-reform"
            }
        }

        let mut sim = small_sim(30, 17);
        sim.run_ticks(150);
        let attackers = sim.pick_attackers(0.2);
        sim.inject_adversary(
            &attackers,
            Box::new(BurstThenReform {
                attack_rounds: 60,
                injected_at: None,
            }),
        );
        sim.deploy_defense(Box::new(DriftCap::with_decay(40.0, DriftDecay::new(30.0))));

        // During the burst: the cap bans, the quarantine flags rise.
        sim.run_ticks(60);
        let quarantined_attackers = attackers.iter().filter(|&&a| sim.quarantined()[a]).count();
        assert!(
            quarantined_attackers > 0,
            "the burst must quarantine attackers"
        );
        assert!(sim.defense_stats().unwrap().bans > 0);
        let reinstated_during_burst = sim.defense_stats().unwrap().reinstated;

        // After reform: the windows heal, the weights decay, and the
        // reputation channel clears the quarantine flags again.
        sim.run_ticks(150);
        let stats = sim.defense_stats().unwrap();
        assert!(
            stats.reinstated > reinstated_during_burst,
            "reformed attackers must be reinstated (bans {}, reinstated {})",
            stats.bans,
            stats.reinstated,
        );
        let still_quarantined = attackers.iter().filter(|&&a| sim.quarantined()[a]).count();
        assert!(
            still_quarantined < quarantined_attackers,
            "reinstatement must clear quarantine flags"
        );
    }

    #[test]
    fn permanent_drift_cap_never_reinstates() {
        use crate::defense::DriftCap;
        use vcoord_attackkit::FrogBoiling;

        let mut sim = small_sim(30, 18);
        sim.run_ticks(150);
        let attackers = sim.pick_attackers(0.2);
        sim.inject_adversary(&attackers, Box::new(FrogBoiling::new(8.0)));
        sim.deploy_defense(Box::new(DriftCap::new(40.0)));
        sim.run_ticks(200);
        let stats = sim.defense_stats().unwrap();
        assert!(stats.bans > 0, "the frog must get banned");
        assert_eq!(stats.reinstated, 0, "permanent bans never forgive");
        assert!(attackers.iter().any(|&a| sim.quarantined()[a]));
    }

    #[test]
    fn empty_chaos_plan_is_bit_identical_to_no_chaos() {
        let run = |install: bool| {
            let mut sim = small_sim(30, 21);
            sim.run_ticks(40);
            if install {
                sim.install_chaos(ChaosPlan::none());
            }
            sim.run_ticks(60);
            (sim.coords().to_vec(), sim.errors().to_vec())
        };
        let (ca, ea) = run(false);
        let (cb, eb) = run(true);
        assert_eq!(ca, cb);
        for (a, b) in ea.iter().zip(&eb) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn crashed_nodes_freeze_and_peers_shed_them() {
        let mut sim = small_sim(30, 22);
        sim.run_ticks(100);
        // Take down nodes 0..3 permanently at injection time.
        sim.install_chaos(ChaosPlan::none().takedown(&[0, 1, 2], 0, None));
        let frozen: Vec<Coord> = (0..3).map(|i| sim.coords()[i].clone()).collect();
        sim.run_ticks(120);
        for (i, f) in frozen.iter().enumerate() {
            assert_eq!(&sim.coords()[i], f, "crashed node {i} moved");
        }
        let c = sim.chaos_counters().unwrap();
        assert!(c.crashes == 3 && c.timeouts > 0 && c.retries > 0, "{c:?}");
        assert!(c.evictions > 0, "peers must evict dead neighbors: {c:?}");
        // Eviction keeps the spring count: replacements were drawn.
        let degree_ok = sim
            .neighbors()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i >= 3)
            .all(|(_, ns)| !ns.is_empty());
        assert!(degree_ok);
    }

    #[test]
    fn restarted_nodes_rejoin_and_reconverge() {
        let mut sim = small_sim(40, 23);
        sim.run_ticks(150);
        let plan = EvalPlan::new(&sim.honest_nodes(), &mut SeedStream::new(9).rng("plan"));
        let steady = plan.avg_error(sim.coords(), sim.space(), sim.matrix());
        let tick = sim.config().tick_ms;
        // A quarter of the population bounces: down for 10 ticks.
        sim.install_chaos(ChaosPlan::with_seed(5).churn_wave(40, 0.25, 2 * tick, 10 * tick));
        sim.run_ticks(15);
        let c = sim.chaos_counters().unwrap();
        assert_eq!(c.crashes, 10);
        assert_eq!(c.restarts, 10);
        // Mid-churn the restarted quarter is at the origin: error is up.
        let during = plan.avg_error(sim.coords(), sim.space(), sim.matrix());
        assert!(during > steady * 1.5, "steady={steady} during={during}");
        sim.run_ticks(250);
        let after = plan.avg_error(sim.coords(), sim.space(), sim.matrix());
        assert!(
            after < steady * 1.5 + 0.05,
            "no re-convergence: steady={steady} after={after}"
        );
    }

    #[test]
    fn partitions_time_probes_out_until_healed() {
        let mut sim = small_sim(20, 24);
        sim.run_ticks(30);
        let tick = sim.config().tick_ms;
        sim.install_chaos(ChaosPlan::with_seed(2).split(20, 0.5, 0, 20 * tick));
        sim.run_ticks(10);
        let mid = sim.chaos_counters().unwrap().timeouts;
        assert!(mid > 0, "cross-partition probes must time out");
        sim.run_ticks(40);
        let healed = sim.chaos_counters().unwrap().timeouts;
        sim.run_ticks(10);
        assert_eq!(
            sim.chaos_counters().unwrap().timeouts,
            healed,
            "after the window heals, probes flow again"
        );
    }

    #[test]
    fn probe_loss_reduces_samples() {
        let seeds = SeedStream::new(5);
        let matrix = KingLike::new(KingLikeConfig::with_nodes(20)).generate(&mut seeds.rng("topo"));
        let mut config = VivaldiConfig::default();
        config.link.loss = 0.5;
        let mut sim = VivaldiSim::new(matrix, config, &seeds);
        sim.run_ticks(20);
        let c = sim.counters();
        assert!(c.probes_lost > 0);
        let loss_rate = c.probes_lost as f64 / c.probes_sent as f64;
        assert!((0.35..0.65).contains(&loss_rate), "loss rate {loss_rate}");
    }
}
