//! Neighbour (spring) selection.
//!
//! The paper attaches each node to 64 springs, 32 of which go to nodes
//! closer than 50 ms (§5.2). When fewer than 32 such nodes exist the
//! shortfall is filled with random far nodes; small systems simply use
//! everyone.

use rand::seq::SliceRandom;
use rand::Rng;
use vcoord_topo::RttMatrix;

/// Choose the spring set for node `i`.
///
/// Picks up to `near_target` random nodes with `rtt < near_cutoff_ms`, then
/// fills up to `total` with random remaining nodes. Returns fewer than
/// `total` only when the system itself is smaller.
pub fn select_neighbors<R: Rng + ?Sized>(
    matrix: &RttMatrix,
    i: usize,
    total: usize,
    near_target: usize,
    near_cutoff_ms: f64,
    rng: &mut R,
) -> Vec<usize> {
    let n = matrix.len();
    let mut near: Vec<usize> = Vec::new();
    let mut far: Vec<usize> = Vec::new();
    for j in 0..n {
        if j == i {
            continue;
        }
        if matrix.rtt(i, j) < near_cutoff_ms {
            near.push(j);
        } else {
            far.push(j);
        }
    }
    near.shuffle(rng);
    far.shuffle(rng);

    let mut picked: Vec<usize> = near.iter().copied().take(near_target).collect();
    // Fill with far nodes first, then spill into unused near nodes.
    for &j in far.iter().chain(near.iter().skip(near_target)) {
        if picked.len() >= total {
            break;
        }
        if !picked.contains(&j) {
            picked.push(j);
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn matrix_with_near(n: usize, near_count: usize) -> RttMatrix {
        // Node 0 is within 10ms of `near_count` nodes, 200ms of the rest.
        let mut m = RttMatrix::zeros(n);
        for j in 1..n {
            let v = if j <= near_count { 10.0 } else { 200.0 };
            m.set(0, j, v);
        }
        for i in 1..n {
            for j in (i + 1)..n {
                m.set(i, j, 150.0);
            }
        }
        m
    }

    #[test]
    fn respects_near_quota() {
        let m = matrix_with_near(200, 80);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let picked = select_neighbors(&m, 0, 64, 32, 50.0, &mut rng);
        assert_eq!(picked.len(), 64);
        let near = picked.iter().filter(|&&j| m.rtt(0, j) < 50.0).count();
        assert_eq!(
            near, 32,
            "exactly the near quota when enough near nodes exist"
        );
    }

    #[test]
    fn fills_with_far_when_near_scarce() {
        let m = matrix_with_near(200, 5);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let picked = select_neighbors(&m, 0, 64, 32, 50.0, &mut rng);
        assert_eq!(picked.len(), 64);
        let near = picked.iter().filter(|&&j| m.rtt(0, j) < 50.0).count();
        assert_eq!(near, 5);
    }

    #[test]
    fn small_system_uses_everyone() {
        let m = matrix_with_near(10, 4);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let picked = select_neighbors(&m, 0, 64, 32, 50.0, &mut rng);
        assert_eq!(picked.len(), 9);
        assert!(!picked.contains(&0), "never a self-spring");
    }

    #[test]
    fn no_duplicates() {
        let m = matrix_with_near(100, 40);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let picked = select_neighbors(&m, 0, 64, 32, 50.0, &mut rng);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), picked.len());
    }
}
