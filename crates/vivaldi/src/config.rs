//! Vivaldi simulation parameters.

use serde::{Deserialize, Serialize};
use vcoord_netsim::LinkModel;
use vcoord_space::Space;

/// Parameters for a [`crate::VivaldiSim`].
///
/// Defaults are the CoNEXT'06 §5.2 settings, which in turn follow the
/// recommendations of the Vivaldi paper: 64 springs per node, 32 of them to
/// nodes closer than 50 ms, adaptive-timestep constant `Cc = 0.25`, 2-D
/// Euclidean space, one probe per node per 17-second tick.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VivaldiConfig {
    /// Embedding space (default 2-D Euclidean; figures 3 and 6 sweep this).
    pub space: Space,
    /// Adaptive timestep constant `Cc` (< 1).
    pub cc: f64,
    /// Initial local error estimate of a fresh node.
    pub initial_error: f64,
    /// Total neighbours (springs) per node.
    pub neighbors: usize,
    /// How many of the neighbours must be "near" (RTT below
    /// [`VivaldiConfig::near_cutoff_ms`]), when enough exist.
    pub near_neighbors: usize,
    /// RTT cutoff defining a near neighbour.
    pub near_cutoff_ms: f64,
    /// Simulated milliseconds per tick (probe period); the paper's tick is
    /// ~17 s.
    pub tick_ms: u64,
    /// Benign link fault model applied to every probe (loss / jitter);
    /// ideal by default.
    pub link: LinkModel,
    /// Numerical clamp range for local error estimates.
    pub error_clamp: (f64, f64),
}

impl Default for VivaldiConfig {
    fn default() -> Self {
        VivaldiConfig {
            space: Space::Euclidean(2),
            cc: 0.25,
            initial_error: 1.0,
            neighbors: 64,
            near_neighbors: 32,
            near_cutoff_ms: 50.0,
            tick_ms: vcoord_netsim::TICK_MS,
            link: LinkModel::ideal(),
            error_clamp: (1e-6, 1e3),
        }
    }
}

impl VivaldiConfig {
    /// Default parameters in the given space.
    pub fn in_space(space: Space) -> Self {
        VivaldiConfig {
            space,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = VivaldiConfig::default();
        assert_eq!(c.cc, 0.25);
        assert_eq!(c.neighbors, 64);
        assert_eq!(c.near_neighbors, 32);
        assert_eq!(c.near_cutoff_ms, 50.0);
        assert_eq!(c.tick_ms, 17_000);
        assert_eq!(c.space, Space::Euclidean(2));
    }
}
