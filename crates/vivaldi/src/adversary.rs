//! The adversary interface: how malicious nodes answer probes.
//!
//! Attack *strategies* (disorder, repulsion, collusion, …) live in the
//! `vcoord` core crate; this module defines the seam between them and the
//! simulator. The contract encodes the paper's threat model:
//!
//! * a malicious node controls the **coordinates** and **error estimate** it
//!   reports, and may **delay** the probe;
//! * it can never *shorten* a measurement — the simulator clamps negative
//!   delays to zero and logs the violation;
//! * attackers may know their victims' true coordinates (the paper's
//!   "knowledge" parameter); the [`VivaldiView`] passed to the adversary is
//!   that oracle, and strategies decide how much of it to use.

use rand_chacha::ChaCha12Rng;
use vcoord_space::{Coord, Space};

/// What a probed malicious node sends back.
#[derive(Debug, Clone)]
pub struct ProbeLie {
    /// Reported coordinates (`x_j` in the update rule).
    pub coord: Coord,
    /// Reported error estimate (`e_j`); the disorder attack reports 0.01.
    pub error: f64,
    /// Extra delay added to the probe, in ms. Clamped to `>= 0` by the
    /// simulator: the threat model forbids shortening RTTs.
    pub delay_ms: f64,
}

/// Read-only view of the true system state offered to adversaries.
///
/// This is the knowledge *oracle*: strategies with partial knowledge must
/// throttle themselves (see `vcoord::attacks::Knowledge`).
pub struct VivaldiView<'a> {
    /// The embedding space.
    pub space: &'a Space,
    /// True current coordinates of every node.
    pub coords: &'a [Coord],
    /// True current local error estimates of every node.
    pub errors: &'a [f64],
    /// Which nodes are currently malicious.
    pub malicious: &'a [bool],
    /// The adaptive-timestep constant `Cc` of the victims (public protocol
    /// knowledge; repulsion lies need it to aim their displacement).
    pub cc: f64,
    /// Current simulated time, ms.
    pub now_ms: u64,
}

/// A strategy deciding how malicious Vivaldi nodes answer probes.
pub trait VivaldiAdversary {
    /// Called once when the attacker set is injected into the running
    /// system, before any lie is requested. Collusion strategies use this to
    /// agree on targets and cluster positions.
    fn inject(&mut self, _attackers: &[usize], _view: &VivaldiView<'_>, _rng: &mut ChaCha12Rng) {}

    /// `victim` probed `attacker` (true RTT `rtt` ms): produce the response.
    ///
    /// Returning `None` means "behave honestly for this probe" (used by
    /// subset-targeted and colluding attacks when facing a non-victim).
    fn respond(
        &mut self,
        attacker: usize,
        victim: usize,
        rtt: f64,
        view: &VivaldiView<'_>,
        rng: &mut ChaCha12Rng,
    ) -> Option<ProbeLie>;

    /// A short label for logs and CSV headers.
    fn label(&self) -> &'static str {
        "adversary"
    }
}

/// The null adversary: every malicious node behaves honestly. Useful for
/// validating that injection plumbing alone does not perturb the system.
#[derive(Debug, Default, Clone, Copy)]
pub struct HonestAdversary;

impl VivaldiAdversary for HonestAdversary {
    fn respond(
        &mut self,
        _attacker: usize,
        _victim: usize,
        _rtt: f64,
        _view: &VivaldiView<'_>,
        _rng: &mut ChaCha12Rng,
    ) -> Option<ProbeLie> {
        None
    }

    fn label(&self) -> &'static str {
        "honest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_adversary_never_lies() {
        let space = Space::Euclidean(2);
        let coords = vec![Coord::origin(2); 2];
        let errors = vec![1.0; 2];
        let malicious = vec![true, false];
        let view = VivaldiView {
            space: &space,
            coords: &coords,
            errors: &errors,
            malicious: &malicious,
            cc: 0.25,
            now_ms: 0,
        };
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        let mut adv = HonestAdversary;
        assert!(adv.respond(0, 1, 10.0, &view, &mut rng).is_none());
        assert_eq!(adv.label(), "honest");
    }
}
