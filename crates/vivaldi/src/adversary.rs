//! The adversary seam: how malicious nodes answer probes.
//!
//! Attack behaviour is injected through the generic scenario engine of
//! [`vcoord_attackkit`] — the simulator holds a [`Scenario`] and routes
//! every probe of a malicious node through it. This module pins down the
//! Vivaldi-specific reading of the generic contract:
//!
//! * a malicious node controls the **coordinates** and **error estimate**
//!   it reports ([`Lie::coord`] / [`Lie::error`]), and may **delay** the
//!   probe; the simulator clamps negative delays to zero and logs the
//!   violation — the threat model forbids shortening measurements;
//! * the [`CoordView`] handed to strategies is the knowledge oracle:
//!   `coords` and `errors` are the true per-node state (attackers
//!   legitimately learn victim positions "by means of previous requests",
//!   paper §5.3.2), `round` is the probe tick, and
//!   [`Protocol::cc`](vcoord_attackkit::Protocol) is Vivaldi's public
//!   adaptive-timestep constant;
//! * Vivaldi has no probe threshold, so
//!   [`Protocol::probe_threshold_ms`](vcoord_attackkit::Protocol) is
//!   infinite — strategies need no delay cap here.

pub use vcoord_attackkit::{
    AttackStrategy, Collusion, CoordView, Honest, Lie, Probe, Protocol, Scenario,
};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vcoord_space::{Coord, Space};

    #[test]
    fn honest_scenario_never_lies_through_the_seam() {
        let space = Space::Euclidean(2);
        let coords = vec![Coord::origin(2); 2];
        let errors = vec![1.0; 2];
        let malicious = vec![true, false];
        let view = CoordView {
            space: &space,
            coords: &coords,
            errors: &errors,
            layer: &[],
            malicious: &malicious,
            is_ref: &[],
            round: 0,
            now_ms: 0,
            params: Protocol::default(),
        };
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(0);
        let mut scenario = Scenario::new(Box::new(Honest));
        scenario.inject(&[0], &view, &mut rng);
        assert!(scenario
            .respond(
                Probe {
                    attacker: 0,
                    victim: 1,
                    rtt: 10.0
                },
                &view,
                &mut rng
            )
            .is_none());
        assert_eq!(scenario.label(), "honest");
    }
}
