//! The defense seam: how honest nodes screen incoming samples.
//!
//! Defense behaviour is injected through the generic engine of
//! [`vcoord_defense`] — the simulator holds a [`Defense`] next to its
//! attackkit `Scenario` slot and routes every sample an honest node is
//! about to apply through [`Defense::inspect`]. This module pins down the
//! Vivaldi-specific reading of the generic contract:
//!
//! * the inspected sample is a **spring sample**: the reported coordinate
//!   and error estimate of the probed peer plus the measured RTT, judged
//!   at delivery time against the victim's *current* coordinate;
//! * [`Verdict::Reject`] drops the sample before the update rule runs
//!   (coordinate and error estimate both untouched);
//!   [`Verdict::Dampen`] scales the adaptive timestep `δ = Cc · w` only —
//!   see [`vivaldi_update_scaled`](crate::node::vivaldi_update_scaled) for
//!   the `Dampen(1.0) ≡ Accept` bit-identity;
//! * `round` is the probe tick, the same clock the adversary seam uses —
//!   attack `on_round` and defense `on_round` advance in lockstep;
//! * an undefended simulation (no [`Defense`] deployed) and a
//!   [`NoDefense`] deployment are byte-identical by construction: both
//!   leave every sample on the pre-existing code path with scale 1.0.

pub use vcoord_defense::{
    Dampener, Defense, DefenseScratch, DefenseStats, DefenseStrategy, DriftCap, DriftDecay,
    EwmaChangePoint, NeighborHistory, NoDefense, Provenance, ResidualOutlier, TriangleCheck,
    TrustedBaseline, Update, UpdateView, Verdict,
};

#[cfg(test)]
mod tests {
    use super::*;
    use vcoord_space::{Coord, Space};

    #[test]
    fn no_defense_accepts_through_the_seam() {
        let space = Space::Euclidean(2);
        let me = Coord::origin(2);
        let them = Coord::from_vec(vec![30.0, 40.0]);
        let mut d = Defense::none();
        let v = d.inspect(
            &space,
            &me,
            Update {
                observer: 1,
                remote: 0,
                reported_coord: &them,
                reported_error: 0.5,
                rtt: 10.0,
                round: 0,
                now_ms: 0,
                provenance: Provenance::Normal,
            },
        );
        assert_eq!(v, Verdict::Accept);
        assert_eq!(d.label(), "none");
    }
}
