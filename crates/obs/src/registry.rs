//! The metric-name registry: interns `&'static str` names into dense
//! [`MetricId`]s so the per-thread recorders can index plain vectors
//! instead of hashing strings on the hot path.

use std::sync::{Mutex, OnceLock};

/// A registered metric. Copyable, dense, and stable for the process
/// lifetime; obtain one with [`metric`] (or the caching
/// [`metric_id!`](crate::metric_id) macro at call sites).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId(u16);

impl MetricId {
    /// Dense index into per-thread recorder vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_index(i: usize) -> MetricId {
        MetricId(u16::try_from(i).expect("metric registry overflow"))
    }
}

fn names() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Intern `name`, returning its id (existing or fresh). Cold path: call
/// sites should cache the result, which is what the
/// [`metric_id!`](crate::metric_id) macro does with a `OnceLock`.
pub fn metric(name: &'static str) -> MetricId {
    let mut names = names().lock().expect("metric registry poisoned");
    if let Some(i) = names.iter().position(|&n| n == name) {
        return MetricId::from_index(i);
    }
    assert!(
        names.len() < u16::MAX as usize,
        "metric registry full ({} names)",
        names.len()
    );
    names.push(name);
    MetricId::from_index(names.len() - 1)
}

/// The name `id` was registered under (`"<unregistered>"` for an id from
/// another process or a corrupted index).
pub fn metric_name(id: MetricId) -> &'static str {
    names()
        .lock()
        .expect("metric registry poisoned")
        .get(id.index())
        .copied()
        .unwrap_or("<unregistered>")
}

/// Intern a metric name once per call site and cache the [`MetricId`] in a
/// local static, so the hot path pays one initialized-`OnceLock` load.
///
/// ```
/// let id = vcoord_obs::metric_id!("demo.macro_metric");
/// assert_eq!(vcoord_obs::metric_name(id), "demo.macro_metric");
/// ```
#[macro_export]
macro_rules! metric_id {
    ($name:literal) => {{
        static ID: ::std::sync::OnceLock<$crate::MetricId> = ::std::sync::OnceLock::new();
        *ID.get_or_init(|| $crate::metric($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_names_round_trip() {
        let a = metric("test.registry.alpha");
        let b = metric("test.registry.beta");
        assert_ne!(a, b);
        assert_eq!(metric("test.registry.alpha"), a);
        assert_eq!(metric_name(a), "test.registry.alpha");
        assert_eq!(metric_name(b), "test.registry.beta");
    }

    #[test]
    fn macro_caches_one_id_per_site() {
        let first = crate::metric_id!("test.registry.macro");
        let second = crate::metric_id!("test.registry.macro");
        assert_eq!(first, second);
        assert_eq!(metric_name(first), "test.registry.macro");
    }
}
