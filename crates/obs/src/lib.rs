//! Structured observability for the vcoord workspace: counters, histograms,
//! and timed spans registered against static metric ids, recorded into
//! per-thread buffers, plus a flight-recorder ring of recent events and a
//! JSONL trace exporter.
//!
//! # Design
//!
//! Two recording planes share one metric-name registry:
//!
//! - The **aggregate plane** ([`global_hist`]) is a set of process-global
//!   lock-free histograms that are *always on* — the successor of the old
//!   `vcoord_nps::evals` module, which now delegates here. Snapshots are
//!   monotone; callers subtract two snapshots for a per-run view.
//! - The **gated plane** ([`counter_add`], [`observe`], [`event`], [`span`])
//!   records into a per-thread buffer and is compiled around a single
//!   process-global mode flag ([`set_mode`]). With the mode [`ObsMode::Off`]
//!   (the default) every recording call is one relaxed atomic load and a
//!   branch: no allocation, no clock read, no thread-local borrow — cheap
//!   enough to leave in the hottest inspect/update/fit loops.
//!
//! # Ownership discipline
//!
//! Per-thread buffers are merged *sequentially*, exactly like `EvalPlan`
//! hands chunk results back to its coordinator: a worker thread records
//! freely without synchronization, then [`drain`]s its buffer into an
//! [`ObsReport`] at a deterministic point (e.g. the end of one repetition),
//! and the coordinator [`absorb`]s the reports in a deterministic order
//! (repetition order). Traces produced this way are byte-identical
//! regardless of worker count — the same argument that keeps `--jobs` out
//! of the figure CSV bytes.
//!
//! # Invariants
//!
//! 1. **Numerics-inert**: nothing in this crate feeds back into simulation
//!    state; golden CSVs are byte-identical with tracing on or off.
//! 2. **Near-free when off**: the disabled path allocates nothing (asserted
//!    under [`testing::CountingAllocator`]) and reads no clock.
//!
//! # JSONL trace schema
//!
//! One file per figure, one JSON object per line ([`render_jsonl`] /
//! [`parse_line`]), schema version [`TRACE_SCHEMA`]:
//!
//! ```text
//! {"type":"meta","schema":2,"run":"smoke-seed2006","fig":"fig1","seed":2006,"scale":"smoke"}
//! {"type":"counter","metric":"defense.accept","value":123}
//! {"type":"hist","metric":"nps.round_evals","count":10,"sum":521,"min":8,"max":120,"p50":44.5,"p90":101,"p95":118,"p99":118}
//! {"type":"event","metric":"defense.flag","rep":0,"round":12,"node":5,"value":1}
//! ```
//!
//! The `meta` line is always first. `rep` is the repetition index (`-1`
//! outside any repetition), `round` the simulation round, `node` a node id
//! or `null` ([`NO_NODE`]), `value` a metric-specific payload. Counter and
//! hist lines summarize the whole run; event lines are the per-round
//! trace, in recording order. Trace files are **byte-deterministic** in
//! `(run, fig, seed, scale)`: the meta line carries no wall-clock fields,
//! and exporters call [`ObsReport::strip_timings`] so wall-clock
//! histograms (metric names ending `_ns`) never reach a trace file — they
//! remain available in-process (e.g. the bench-baseline `"obs"` block).

mod aggregate;
pub mod diff;
mod export;
pub mod hdr;
mod record;
mod registry;
mod report;
mod ring;
pub mod testing;

pub use aggregate::{global_hist, global_hists, GlobalHist, HistSnapshot};
pub use export::{parse_jsonl, parse_line, render_jsonl, TraceLine, TraceMeta, TRACE_SCHEMA};
pub use record::{
    absorb, counter_add, drain, event, observe, reset, span, Event, HistData, ObsReport, Span,
    HIST_BUCKETS, NO_NODE, NO_REP,
};
pub use registry::{metric, metric_name, MetricId};
pub use report::{
    digest, summarize, summary_csv, summary_text, Digest, HistRow, RoundRow, SummaryRow,
};
pub use ring::{clear_recent_events, recent_events, EventRing, FLIGHT_RING_CAP};

use std::sync::atomic::{AtomicU8, Ordering};

/// Global recording mode for the gated plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsMode {
    /// Default: recording calls are a load-and-branch no-op.
    Off,
    /// Counters, histograms, spans, and the flight ring are live; events
    /// are *not* buffered for export (ring only).
    Metrics,
    /// Everything in `Metrics`, plus events buffered per-thread for JSONL
    /// export.
    Trace,
}

static MODE: AtomicU8 = AtomicU8::new(0);

/// Set the process-global recording mode. Intended to be called once at
/// binary start-up (or around a test body); flipping it mid-run leaves
/// partially recorded buffers behind but is otherwise harmless.
pub fn set_mode(mode: ObsMode) {
    MODE.store(mode as u8, Ordering::Relaxed);
}

/// The current recording mode.
#[inline]
pub fn mode() -> ObsMode {
    match MODE.load(Ordering::Relaxed) {
        0 => ObsMode::Off,
        1 => ObsMode::Metrics,
        _ => ObsMode::Trace,
    }
}

/// Whether the gated plane records at all (mode is not [`ObsMode::Off`]).
///
/// Instrumentation sites that do extra work to *prepare* a record (clock
/// reads, id lookups) should gate on this; the recording calls themselves
/// already check.
#[inline]
pub fn enabled() -> bool {
    MODE.load(Ordering::Relaxed) != 0
}

/// Whether events are buffered for export (mode is [`ObsMode::Trace`]).
#[inline]
pub fn tracing() -> bool {
    MODE.load(Ordering::Relaxed) == ObsMode::Trace as u8
}

/// Initialize the mode from the `VCOORD_OBS` environment variable
/// (`off` | `metrics` | `trace`; anything else leaves the mode unchanged).
/// Returns the mode in effect afterwards.
pub fn init_from_env() -> ObsMode {
    match std::env::var("VCOORD_OBS").as_deref() {
        Ok("off") => set_mode(ObsMode::Off),
        Ok("metrics") => set_mode(ObsMode::Metrics),
        Ok("trace") => set_mode(ObsMode::Trace),
        _ => {}
    }
    mode()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_round_trips() {
        // Other unit tests in this binary rely on the default Off mode, so
        // restore it; modes are process-global.
        assert_eq!(mode(), ObsMode::Off);
        set_mode(ObsMode::Trace);
        assert_eq!(mode(), ObsMode::Trace);
        assert!(enabled() && tracing());
        set_mode(ObsMode::Metrics);
        assert!(enabled() && !tracing());
        set_mode(ObsMode::Off);
        assert!(!enabled());
    }
}
