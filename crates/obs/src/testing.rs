//! Shared test support for the workspace's zero-allocation contracts: a
//! counting global allocator used by the defense, obs, vivaldi, and nps
//! no-alloc suites and the kernels bench, so every assertion site agrees
//! on what "allocation" means.
//!
//! Each consuming *binary* still declares its own
//! `#[global_allocator] static A: CountingAllocator = CountingAllocator;`
//! (the attribute is per-binary by construction); the struct and the
//! counter live here once. Domain-specific warm-up bounds (e.g. the
//! defense crate's `ring_fill_samples`) stay next to the constants they
//! derive from.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Number of allocation/reallocation calls observed so far in this
/// process.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Minimum allocation count of `body` over `attempts` runs.
///
/// The counter is process-global, so a runtime thread (libtest's harness,
/// an IO flush) allocating mid-window shows up as a spurious one-off
/// count under parallel-suite load. A genuine per-iteration leak in the
/// measured loop allocates on *every* attempt; harness noise does not —
/// so the minimum preserves the exact zero-allocation contract while
/// tolerating ambient noise. `body` must be idempotent.
pub fn min_allocations_over<F: FnMut()>(attempts: usize, mut body: F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..attempts.max(1) {
        let before = allocations();
        body();
        best = best.min(allocations() - before);
        if best == 0 {
            break;
        }
    }
    best
}

/// A [`System`]-delegating allocator that counts `alloc`/`realloc` calls.
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}
