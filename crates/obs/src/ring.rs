//! The flight recorder: a bounded ring of the most recent structured
//! events, process-global, for post-mortem inspection of a run that went
//! wrong. Never exported to traces (per-thread buffers own that, for
//! determinism); this is the "what just happened" window.

use crate::record::Event;
use std::sync::{Mutex, OnceLock};

/// Capacity of the process-global flight ring.
pub const FLIGHT_RING_CAP: usize = 1024;

/// A fixed-capacity ring of [`Event`]s; pushes never allocate after
/// construction, the oldest event is evicted first.
#[derive(Debug)]
pub struct EventRing {
    cap: usize,
    buf: Vec<Event>,
    total: u64,
}

impl EventRing {
    /// An empty ring holding at most `cap` events (`cap > 0`).
    pub fn new(cap: usize) -> EventRing {
        assert!(cap > 0, "ring capacity must be positive");
        EventRing {
            cap,
            buf: Vec::with_capacity(cap),
            total: 0,
        }
    }

    /// Append `e`, evicting the oldest event once full.
    pub fn push(&mut self, e: Event) {
        let slot = (self.total % self.cap as u64) as usize;
        if self.buf.len() < self.cap {
            self.buf.push(e);
        } else {
            self.buf[slot] = e;
        }
        self.total += 1;
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events ever pushed, including evicted ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Snapshot of the held events, oldest first.
    pub fn oldest_first(&self) -> Vec<Event> {
        if self.total <= self.cap as u64 {
            return self.buf.clone();
        }
        let start = (self.total % self.cap as u64) as usize;
        let mut out = Vec::with_capacity(self.cap);
        out.extend_from_slice(&self.buf[start..]);
        out.extend_from_slice(&self.buf[..start]);
        out
    }

    /// Drop all held events (the total keeps counting).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.total = 0;
    }
}

fn global() -> &'static Mutex<EventRing> {
    static RING: OnceLock<Mutex<EventRing>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(EventRing::new(FLIGHT_RING_CAP)))
}

pub(crate) fn push_global(e: Event) {
    global().lock().expect("flight ring poisoned").push(e);
}

/// Snapshot the process-global flight ring, oldest first.
pub fn recent_events() -> Vec<Event> {
    global()
        .lock()
        .expect("flight ring poisoned")
        .oldest_first()
}

/// Empty the process-global flight ring.
pub fn clear_recent_events() {
    global().lock().expect("flight ring poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{NO_NODE, NO_REP};
    use crate::registry::metric;

    fn ev(value: f64) -> Event {
        Event {
            metric: metric("test.ring"),
            rep: NO_REP,
            round: 0,
            node: NO_NODE,
            value,
        }
    }

    #[test]
    fn evicts_oldest_first_and_preserves_order() {
        let mut ring = EventRing::new(3);
        assert!(ring.is_empty());
        for i in 0..5 {
            ring.push(ev(i as f64));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total(), 5);
        let vals: Vec<f64> = ring.oldest_first().iter().map(|e| e.value).collect();
        // 0 and 1 were evicted; 2..4 survive in push order.
        assert_eq!(vals, vec![2.0, 3.0, 4.0]);
        ring.push(ev(5.0));
        let vals: Vec<f64> = ring.oldest_first().iter().map(|e| e.value).collect();
        assert_eq!(vals, vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut ring = EventRing::new(8);
        ring.push(ev(1.0));
        ring.push(ev(2.0));
        let vals: Vec<f64> = ring.oldest_first().iter().map(|e| e.value).collect();
        assert_eq!(vals, vec![1.0, 2.0]);
        ring.clear();
        assert!(ring.is_empty() && ring.oldest_first().is_empty());
    }
}
