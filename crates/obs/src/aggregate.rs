//! The aggregate plane: process-global, always-on, lock-free histograms
//! with linear buckets and monotone snapshot/delta semantics. This is the
//! generalization of the old `vcoord_nps::evals` module, which now
//! registers its histogram here; bench harnesses snapshot around a run and
//! subtract.

use crate::registry::{metric, metric_name, MetricId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A process-global histogram over non-negative integer samples with
/// fixed-width linear buckets (last bucket open-ended). Recording is a few
/// relaxed atomic adds — safe from any thread, never gated on the
/// [`mode`](crate::mode) flag, so accounting that predates the gated plane
/// keeps its always-on semantics.
#[derive(Debug)]
pub struct GlobalHist {
    id: MetricId,
    bucket_width: usize,
    total_value: AtomicU64,
    total_count: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

fn registry() -> &'static Mutex<Vec<&'static GlobalHist>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static GlobalHist>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Register (or look up) the global histogram `name` with `buckets` linear
/// buckets of `bucket_width`. Re-registration with the same shape returns
/// the existing histogram; a different shape panics (two call sites
/// disagreeing about one metric is a programming error).
pub fn global_hist(name: &'static str, bucket_width: usize, buckets: usize) -> &'static GlobalHist {
    assert!(
        bucket_width > 0 && buckets > 0,
        "degenerate histogram shape"
    );
    let id = metric(name);
    let mut reg = registry().lock().expect("global hist registry poisoned");
    if let Some(h) = reg.iter().find(|h| h.id == id) {
        assert!(
            h.bucket_width == bucket_width && h.buckets.len() == buckets,
            "global_hist({name:?}) re-registered with a different shape"
        );
        return h;
    }
    let hist: &'static GlobalHist = Box::leak(Box::new(GlobalHist {
        id,
        bucket_width,
        total_value: AtomicU64::new(0),
        total_count: AtomicU64::new(0),
        buckets: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
    }));
    reg.push(hist);
    hist
}

/// Every registered global histogram, in registration order.
pub fn global_hists() -> Vec<&'static GlobalHist> {
    registry()
        .lock()
        .expect("global hist registry poisoned")
        .clone()
}

impl GlobalHist {
    pub fn id(&self) -> MetricId {
        self.id
    }

    pub fn name(&self) -> &'static str {
        metric_name(self.id)
    }

    pub fn bucket_width(&self) -> usize {
        self.bucket_width
    }

    /// Record one sample of `value`. Relaxed ordering: each counter is an
    /// independent monotone tally, no cross-counter invariant.
    pub fn record(&self, value: usize) {
        self.total_value.fetch_add(value as u64, Ordering::Relaxed);
        self.total_count.fetch_add(1, Ordering::Relaxed);
        let b = (value / self.bucket_width).min(self.buckets.len() - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy; subtract two with
    /// [`HistSnapshot::delta_since`] for a per-run view.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            bucket_width: self.bucket_width,
            total_value: self.total_value.load(Ordering::Relaxed),
            total_count: self.total_count.load(Ordering::Relaxed),
            hist: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A copy of a [`GlobalHist`] at one instant (or the difference of two
/// such copies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    bucket_width: usize,
    total_value: u64,
    total_count: u64,
    hist: Vec<u64>,
}

impl HistSnapshot {
    /// The samples recorded between `earlier` and `self`.
    ///
    /// # Panics
    /// Panics if `earlier` is not actually earlier (the counters are
    /// monotone, so a negative delta means the snapshots were swapped).
    pub fn delta_since(&self, earlier: &HistSnapshot) -> HistSnapshot {
        assert_eq!(
            self.bucket_width, earlier.bucket_width,
            "snapshot shapes differ"
        );
        assert_eq!(
            self.hist.len(),
            earlier.hist.len(),
            "snapshot shapes differ"
        );
        HistSnapshot {
            bucket_width: self.bucket_width,
            total_value: self
                .total_value
                .checked_sub(earlier.total_value)
                .expect("snapshots out of order"),
            total_count: self
                .total_count
                .checked_sub(earlier.total_count)
                .expect("snapshots out of order"),
            hist: self
                .hist
                .iter()
                .zip(&earlier.hist)
                .map(|(a, b)| a.checked_sub(*b).expect("snapshots out of order"))
                .collect(),
        }
    }

    /// Samples covered by this snapshot (or delta).
    pub fn count(&self) -> u64 {
        self.total_count
    }

    /// Summed sample values covered.
    pub fn sum(&self) -> u64 {
        self.total_value
    }

    /// Per-bucket sample counts.
    pub fn buckets(&self) -> &[u64] {
        &self.hist
    }

    pub fn bucket_width(&self) -> usize {
        self.bucket_width
    }

    /// Exact mean sample value (`NaN` with no samples).
    pub fn mean(&self) -> f64 {
        if self.total_count == 0 {
            return f64::NAN;
        }
        self.total_value as f64 / self.total_count as f64
    }

    /// Approximate median sample value: the midpoint of the bucket
    /// containing the median sample (`NaN` with no samples). Resolution is
    /// the bucket width.
    pub fn median(&self) -> f64 {
        if self.total_count == 0 {
            return f64::NAN;
        }
        let target = self.total_count.div_ceil(2);
        let mut seen = 0u64;
        for (i, &count) in self.hist.iter().enumerate() {
            seen += count;
            if seen >= target {
                return (i * self.bucket_width) as f64 + self.bucket_width as f64 / 2.0;
            }
        }
        unreachable!("histogram counts sum to total_count");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The histograms are process-global, so every assertion works on
    // snapshot deltas over locally recorded samples.

    #[test]
    fn deltas_track_recorded_samples() {
        let h = global_hist("test.aggregate.delta", 25, 64);
        let before = h.snapshot();
        h.record(10);
        h.record(30);
        h.record(200);
        let d = h.snapshot().delta_since(&before);
        assert_eq!(d.count(), 3);
        assert_eq!(d.sum(), 240);
        assert!((d.mean() - 80.0).abs() < 1e-12);
        // Median sample is the 30-value one: bucket [25, 50), midpoint 37.5.
        assert_eq!(d.median(), 37.5);
    }

    #[test]
    fn overflow_lands_in_last_bucket() {
        let h = global_hist("test.aggregate.overflow", 10, 4);
        let before = h.snapshot();
        h.record(1_000_000);
        let d = h.snapshot().delta_since(&before);
        assert_eq!(d.count(), 1);
        assert_eq!(d.buckets()[3], 1);
    }

    #[test]
    fn reregistration_returns_the_same_histogram() {
        let a = global_hist("test.aggregate.same", 5, 8);
        let b = global_hist("test.aggregate.same", 5, 8);
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.name(), "test.aggregate.same");
    }

    #[test]
    #[should_panic(expected = "snapshots out of order")]
    fn swapped_snapshots_panic() {
        let h = global_hist("test.aggregate.swap", 5, 8);
        let before = h.snapshot();
        h.record(1);
        let after = h.snapshot();
        let _ = before.delta_since(&after);
    }
}
