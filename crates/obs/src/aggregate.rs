//! The aggregate plane: process-global, always-on, lock-free histograms
//! with HDR-style log buckets ([`crate::hdr`]) and monotone snapshot/delta
//! semantics. This is the generalization of the old `vcoord_nps::evals`
//! module, which now registers its histogram here; bench harnesses
//! snapshot around a run and subtract.

use crate::hdr;
use crate::registry::{metric, metric_name, MetricId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A process-global histogram over non-negative integer samples with the
/// shared HDR bucket layout ([`hdr::BUCKET_COUNT`] log buckets covering all
/// of `u64` at ≤ 2^-[`hdr::SUB_BITS`] relative width). Recording is a few
/// relaxed atomic adds — safe from any thread, never gated on the
/// [`mode`](crate::mode) flag, so accounting that predates the gated plane
/// keeps its always-on semantics.
#[derive(Debug)]
pub struct GlobalHist {
    id: MetricId,
    total_value: AtomicU64,
    total_count: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

fn registry() -> &'static Mutex<Vec<&'static GlobalHist>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static GlobalHist>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Register (or look up) the global histogram `name`. All global
/// histograms share the HDR bucket layout, so re-registration simply
/// returns the existing histogram.
pub fn global_hist(name: &'static str) -> &'static GlobalHist {
    let id = metric(name);
    let mut reg = registry().lock().expect("global hist registry poisoned");
    if let Some(h) = reg.iter().find(|h| h.id == id) {
        return h;
    }
    let hist: &'static GlobalHist = Box::leak(Box::new(GlobalHist {
        id,
        total_value: AtomicU64::new(0),
        total_count: AtomicU64::new(0),
        buckets: (0..hdr::BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
    }));
    reg.push(hist);
    hist
}

/// Every registered global histogram, in registration order.
pub fn global_hists() -> Vec<&'static GlobalHist> {
    registry()
        .lock()
        .expect("global hist registry poisoned")
        .clone()
}

impl GlobalHist {
    pub fn id(&self) -> MetricId {
        self.id
    }

    pub fn name(&self) -> &'static str {
        metric_name(self.id)
    }

    /// Record one sample of `value`. Relaxed ordering: each counter is an
    /// independent monotone tally, no cross-counter invariant.
    pub fn record(&self, value: usize) {
        self.total_value.fetch_add(value as u64, Ordering::Relaxed);
        self.total_count.fetch_add(1, Ordering::Relaxed);
        self.buckets[hdr::index_of(value as u64)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy; subtract two with
    /// [`HistSnapshot::delta_since`] for a per-run view.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            total_value: self.total_value.load(Ordering::Relaxed),
            total_count: self.total_count.load(Ordering::Relaxed),
            hist: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A copy of a [`GlobalHist`] at one instant (or the difference of two
/// such copies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    total_value: u64,
    total_count: u64,
    hist: Vec<u64>,
}

impl HistSnapshot {
    /// The samples recorded between `earlier` and `self`.
    ///
    /// # Panics
    /// Panics if `earlier` is not actually earlier (the counters are
    /// monotone, so a negative delta means the snapshots were swapped).
    pub fn delta_since(&self, earlier: &HistSnapshot) -> HistSnapshot {
        assert_eq!(
            self.hist.len(),
            earlier.hist.len(),
            "snapshot shapes differ"
        );
        HistSnapshot {
            total_value: self
                .total_value
                .checked_sub(earlier.total_value)
                .expect("snapshots out of order"),
            total_count: self
                .total_count
                .checked_sub(earlier.total_count)
                .expect("snapshots out of order"),
            hist: self
                .hist
                .iter()
                .zip(&earlier.hist)
                .map(|(a, b)| a.checked_sub(*b).expect("snapshots out of order"))
                .collect(),
        }
    }

    /// Samples covered by this snapshot (or delta).
    pub fn count(&self) -> u64 {
        self.total_count
    }

    /// Summed sample values covered.
    pub fn sum(&self) -> u64 {
        self.total_value
    }

    /// Per-bucket sample counts (HDR layout, see [`hdr::bounds_of`]).
    pub fn buckets(&self) -> &[u64] {
        &self.hist
    }

    /// Exact mean sample value (`NaN` with no samples).
    pub fn mean(&self) -> f64 {
        if self.total_count == 0 {
            return f64::NAN;
        }
        self.total_value as f64 / self.total_count as f64
    }

    /// Nearest-rank quantile estimate: the midpoint of the HDR bucket
    /// holding the `ceil(q·count)`-th sample (`NaN` with no samples).
    /// Error is bounded by the bucket width at that magnitude —
    /// ≤ 2^-[`hdr::SUB_BITS`] relative.
    pub fn quantile(&self, q: f64) -> f64 {
        hdr::quantile_from_buckets(&self.hist, self.total_count, q)
    }

    /// Approximate median: [`Self::quantile`]`(0.5)`.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Tail quantiles in one call: `(p50, p90, p95, p99)`.
    pub fn percentiles(&self) -> (f64, f64, f64, f64) {
        (
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The histograms are process-global, so every assertion works on
    // snapshot deltas over locally recorded samples.

    #[test]
    fn deltas_track_recorded_samples() {
        let h = global_hist("test.aggregate.delta");
        let before = h.snapshot();
        h.record(10);
        h.record(30);
        h.record(200);
        let d = h.snapshot().delta_since(&before);
        assert_eq!(d.count(), 3);
        assert_eq!(d.sum(), 240);
        assert!((d.mean() - 80.0).abs() < 1e-12);
        // Median sample is the 30-value one; the HDR bucket [30, 31) has
        // midpoint 30.5, and 30 is within one bucket width of it.
        assert!((d.median() - 30.0).abs() <= hdr::width_of(30) as f64);
    }

    #[test]
    fn quantiles_reach_the_tail() {
        let h = global_hist("test.aggregate.tail");
        let before = h.snapshot();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(100_000);
        let d = h.snapshot().delta_since(&before);
        assert_eq!(d.quantile(0.5), 10.5);
        assert_eq!(d.quantile(0.95), 10.5);
        // p99 with 100 samples is the 99th sample (rank ceil(0.99*100)=99),
        // still a 10; p100 is the outlier.
        assert_eq!(d.quantile(0.99), 10.5);
        let p100 = d.quantile(1.0);
        assert!((p100 - 100_000.0).abs() <= hdr::width_of(100_000) as f64);
        let (p50, p90, p95, p99) = d.percentiles();
        assert_eq!((p50, p90, p95, p99), (10.5, 10.5, 10.5, 10.5));
    }

    #[test]
    fn huge_samples_keep_relative_resolution() {
        let h = global_hist("test.aggregate.huge");
        let before = h.snapshot();
        h.record(1_000_000);
        let d = h.snapshot().delta_since(&before);
        assert_eq!(d.count(), 1);
        // Resolution at 1e6 is the bucket width there, not a fixed cap.
        let w = hdr::width_of(1_000_000) as f64;
        assert!(w <= 1_000_000.0 / 16.0);
        assert!((d.median() - 1_000_000.0).abs() <= w);
    }

    #[test]
    fn reregistration_returns_the_same_histogram() {
        let a = global_hist("test.aggregate.same");
        let b = global_hist("test.aggregate.same");
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.name(), "test.aggregate.same");
    }

    #[test]
    #[should_panic(expected = "snapshots out of order")]
    fn swapped_snapshots_panic() {
        let h = global_hist("test.aggregate.swap");
        let before = h.snapshot();
        h.record(1);
        let after = h.snapshot();
        let _ = before.delta_since(&after);
    }
}
