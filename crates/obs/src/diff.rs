//! Cross-run comparison: reduce two runs (JSONL traces or `BENCH_*.json`
//! baselines) to flat `(section, key, value)` samples, compare them under
//! a declarative tolerance spec, and report regressions — the library half
//! of the `obs-diff` binary.
//!
//! # Sections and sidedness
//!
//! Samples are grouped into sections, which the tolerance spec addresses
//! by name:
//!
//! | section           | source                              | sidedness |
//! |-------------------|-------------------------------------|-----------|
//! | `counters`        | trace / BENCH obs counters          | two-sided |
//! | `hists`           | trace / BENCH obs histograms        | two-sided |
//! | `evals_per_round` | BENCH `evals_per_round` block       | one-sided |
//! | `figures`         | BENCH per-figure wall-clock seconds | one-sided |
//! | `kernels`         | BENCH kernel timings                | one-sided |
//!
//! Two-sided sections regress when a value moves in *either* direction
//! past tolerance (behavior drift); one-sided sections regress only on
//! increase (perf: faster is never a regression).
//!
//! # Tolerance spec
//!
//! A small TOML subset: top-level `default_rel` / `default_abs`, one table
//! per section with its own defaults and per-key overrides. Values are
//! numbers, `"inf"` (report-only: never regress), or inline tables
//! `{ rel = ..., abs = ... }`. A key regresses when
//! `|new - base| > abs + rel * |base|` (one-sided drops the `| |` on the
//! left). Per-key lookup tries the exact key, then the key without its
//! `fig/` prefix, then without a trailing `.sub` field — so
//! `"nps.round_evals" = { rel = 0.2 }` covers every figure and subfield.
//!
//! ```toml
//! default_rel = 0.1
//! default_abs = 1e-9
//!
//! [counters]
//! default_rel = 0.0          # deterministic: any drift is a regression
//! "chaos.retries" = { rel = 0.5 }
//!
//! [kernels]
//! default_rel = "inf"        # report-only
//! ```
//!
//! Keys present on only one side are reported but never regress — new
//! counters legitimately appear as instrumentation grows.

use crate::export::TraceLine;
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Minimal recursive JSON parser (the vendored serde is a no-op stub, and
// BENCH files are nested — export::parse_line's flat parser cannot read
// them).

/// A parsed JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.peek() {
            Some(c) if c == want => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!(
                "byte {}: expected {:?}, found {:?}",
                self.pos,
                want as char,
                other.map(|c| c as char)
            )),
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(format!(
                "byte {}: unexpected {:?}",
                self.pos,
                other.map(|c| c as char)
            )),
        }
    }

    fn parse_literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("byte {}: bad literal", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        text.parse()
            .map(Json::Num)
            .map_err(|_| format!("byte {start}: bad number {text:?}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .src
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("non-scalar \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through byte-wise.
                    let rest =
                        std::str::from_utf8(&self.src[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "byte {}: expected ',' or '}}', found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "byte {}: expected ',' or ']', found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

/// Parse one JSON document (arbitrarily nested, unlike the flat trace-line
/// parser in [`crate::parse_line`]).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = JsonParser {
        src: text.as_bytes(),
        pos: 0,
    };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(format!("byte {}: trailing content", p.pos));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Tolerance spec.

/// Allowed movement for one key: regress when the change exceeds
/// `abs + rel * |base|`. `rel = inf` marks a report-only key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    pub rel: f64,
    pub abs: f64,
}

impl Tolerance {
    pub fn limit(&self, base: f64) -> f64 {
        self.abs + self.rel * base.abs()
    }
}

#[derive(Debug, Default, Clone)]
struct Section {
    default: Option<Tolerance>,
    per_key: BTreeMap<String, Tolerance>,
}

/// A parsed tolerance spec: global defaults, per-section defaults, and
/// per-key overrides (see the module docs for the format).
#[derive(Debug, Clone)]
pub struct ToleranceSpec {
    default: Tolerance,
    sections: BTreeMap<String, Section>,
}

impl Default for ToleranceSpec {
    /// The built-in spec when no file is given: 10 % relative slack
    /// everywhere, exactness on counters (they are deterministic in this
    /// workspace).
    fn default() -> Self {
        let mut sections = BTreeMap::new();
        sections.insert(
            "counters".to_string(),
            Section {
                default: Some(Tolerance { rel: 0.0, abs: 0.0 }),
                per_key: BTreeMap::new(),
            },
        );
        ToleranceSpec {
            default: Tolerance {
                rel: 0.1,
                abs: 1e-9,
            },
            sections,
        }
    }
}

fn parse_tol_number(raw: &str) -> Result<f64, String> {
    let raw = raw.trim().trim_matches('"');
    if raw.eq_ignore_ascii_case("inf") {
        return Ok(f64::INFINITY);
    }
    raw.parse()
        .map_err(|_| format!("bad tolerance value {raw:?}"))
}

/// Parse `rel`/`abs` out of either a bare number (`0.1` → rel) or an
/// inline table (`{ rel = 0.1, abs = 2 }`).
fn parse_tol_value(raw: &str, defaults: Tolerance) -> Result<Tolerance, String> {
    let raw = raw.trim();
    if let Some(inner) = raw.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
        let mut tol = defaults;
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("bad inline table entry {part:?}"))?;
            match k.trim() {
                "rel" => tol.rel = parse_tol_number(v)?,
                "abs" => tol.abs = parse_tol_number(v)?,
                other => return Err(format!("unknown inline table key {other:?}")),
            }
        }
        Ok(tol)
    } else {
        Ok(Tolerance {
            rel: parse_tol_number(raw)?,
            ..defaults
        })
    }
}

impl ToleranceSpec {
    /// Parse the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<ToleranceSpec, String> {
        let mut spec = ToleranceSpec {
            default: Tolerance {
                rel: 0.1,
                abs: 1e-9,
            },
            sections: BTreeMap::new(),
        };
        let mut current: Option<String> = None;
        for (i, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let at = |e: String| format!("line {}: {e}", i + 1);
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim();
                spec.sections.entry(name.to_string()).or_default();
                current = Some(name.to_string());
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| at(format!("expected `key = value`, got {line:?}")))?;
            let key = key.trim().trim_matches('"').to_string();
            let value = value.trim();
            match (&current, key.as_str()) {
                (None, "default_rel") => spec.default.rel = parse_tol_number(value).map_err(at)?,
                (None, "default_abs") => spec.default.abs = parse_tol_number(value).map_err(at)?,
                (None, other) => {
                    return Err(at(format!("unknown top-level key {other:?}")));
                }
                (Some(section), _) => {
                    let defaults = spec.default;
                    let sec = spec.sections.get_mut(section).expect("entered above");
                    match key.as_str() {
                        "default_rel" => {
                            let d = sec.default.get_or_insert(defaults);
                            d.rel = parse_tol_number(value).map_err(at)?;
                        }
                        "default_abs" => {
                            let d = sec.default.get_or_insert(defaults);
                            d.abs = parse_tol_number(value).map_err(at)?;
                        }
                        _ => {
                            let base = sec.default.unwrap_or(defaults);
                            sec.per_key
                                .insert(key, parse_tol_value(value, base).map_err(at)?);
                        }
                    }
                }
            }
        }
        Ok(spec)
    }

    /// Resolve the tolerance for `key` in `section`: exact key, then the
    /// key without its `fig/` prefix, then each of those without a
    /// trailing `.field`, then the section default, then the global one.
    pub fn lookup(&self, section: &str, key: &str) -> Tolerance {
        let sec = self.sections.get(section);
        if let Some(sec) = sec {
            let mut candidates: Vec<&str> = vec![key];
            let unprefixed = key.split_once('/').map(|(_, rest)| rest);
            if let Some(u) = unprefixed {
                candidates.push(u);
            }
            if let Some((stem, _)) = key.rsplit_once('.') {
                candidates.push(stem);
            }
            if let Some(u) = unprefixed {
                if let Some((stem, _)) = u.rsplit_once('.') {
                    candidates.push(stem);
                }
            }
            for c in candidates {
                if let Some(tol) = sec.per_key.get(c) {
                    return *tol;
                }
            }
            if let Some(d) = sec.default {
                return d;
            }
        }
        self.default
    }
}

// ---------------------------------------------------------------------------
// Sample extraction.

/// One comparable scalar from a run.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Tolerance-spec section (`counters`, `hists`, `evals_per_round`,
    /// `figures`, `kernels`).
    pub section: &'static str,
    pub key: String,
    pub value: f64,
    /// One-sided sections regress only on increase.
    pub one_sided: bool,
}

fn sample(section: &'static str, key: String, value: f64, one_sided: bool) -> Option<Sample> {
    value.is_finite().then_some(Sample {
        section,
        key,
        value,
        one_sided,
    })
}

/// Reduce one parsed trace to samples, prefixing keys with `fig/` so
/// multi-trace runs stay disjoint. Wall-clock (`*_ns`) histograms never
/// appear in traces, so everything here is deterministic and two-sided.
pub fn samples_from_trace(fig: &str, lines: &[TraceLine]) -> Vec<Sample> {
    let mut out = Vec::new();
    for line in lines {
        match line {
            TraceLine::Counter { metric, value } => {
                out.extend(sample(
                    "counters",
                    format!("{fig}/{metric}"),
                    *value as f64,
                    false,
                ));
            }
            TraceLine::Hist {
                metric,
                count,
                sum,
                quantiles,
                ..
            } => {
                let key = |f: &str| format!("{fig}/{metric}.{f}");
                out.extend(sample("hists", key("count"), *count as f64, false));
                out.extend(sample(
                    "hists",
                    key("mean"),
                    sum / (*count).max(1) as f64,
                    false,
                ));
                if let Some([p50, p90, p95, p99]) = quantiles {
                    out.extend(sample("hists", key("p50"), *p50, false));
                    out.extend(sample("hists", key("p90"), *p90, false));
                    out.extend(sample("hists", key("p95"), *p95, false));
                    out.extend(sample("hists", key("p99"), *p99, false));
                }
            }
            _ => {}
        }
    }
    out
}

/// Reduce one parsed `BENCH_*.json` baseline to samples. Handles schema 2
/// (no obs block) through schema 4 — absent blocks simply contribute
/// nothing, and the shared-key comparison skips the rest.
pub fn samples_from_bench(bench: &Json) -> Result<Vec<Sample>, String> {
    if bench.get("schema").and_then(Json::as_num).is_none() {
        return Err("not a BENCH baseline: no numeric \"schema\" field".to_string());
    }
    let mut out = Vec::new();
    if let Some(kernels) = bench.get("kernels").and_then(Json::as_obj) {
        for (name, stats) in kernels {
            for field in ["mean_s", "median_s", "trimmed_mean_s", "p95_s"] {
                if let Some(v) = stats.get(field) {
                    let short = field.strip_suffix("_s").expect("static suffix");
                    out.extend(sample(
                        "kernels",
                        format!("{name}.{short}"),
                        v.as_num().unwrap_or(f64::NAN),
                        true,
                    ));
                }
            }
        }
    }
    if let Some(evals) = bench.get("evals_per_round").and_then(Json::as_obj) {
        for (fig, stats) in evals {
            if let Some(fields) = stats.as_obj() {
                for (field, v) in fields {
                    out.extend(sample(
                        "evals_per_round",
                        format!("{fig}.{field}"),
                        v.as_num().unwrap_or(f64::NAN),
                        // More rounds is not a regression; more evals per
                        // round is.
                        field != "rounds",
                    ));
                }
            }
        }
    }
    if let Some(figures) = bench.get("figures").and_then(Json::as_obj) {
        for (fig, v) in figures {
            out.extend(sample(
                "figures",
                fig.clone(),
                v.as_num().unwrap_or(f64::NAN),
                true,
            ));
        }
    }
    if let Some(total) = bench.get("figures_total_s").and_then(Json::as_num) {
        out.extend(sample("figures", "total".to_string(), total, true));
    }
    if let Some(obs) = bench.get("obs").and_then(Json::as_obj) {
        for (fig, block) in obs {
            if let Some(counters) = block.get("counters").and_then(Json::as_obj) {
                for (metric, v) in counters {
                    out.extend(sample(
                        "counters",
                        format!("{fig}/{metric}"),
                        v.as_num().unwrap_or(f64::NAN),
                        false,
                    ));
                }
            }
            if let Some(hists) = block.get("hists").and_then(Json::as_obj) {
                for (metric, stats) in hists {
                    // Wall-clock hists are nondeterministic: keep them
                    // report-only by *section* choice — they land in
                    // `hists` and specs set `_ns`-wide tolerances — but
                    // still extracted so drift is visible.
                    if let Some(fields) = stats.as_obj() {
                        for (field, v) in fields {
                            out.extend(sample(
                                "hists",
                                format!("{fig}/{metric}.{field}"),
                                v.as_num().unwrap_or(f64::NAN),
                                false,
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Comparison.

/// One compared key.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRow {
    pub section: &'static str,
    pub key: String,
    pub base: f64,
    pub new: f64,
    /// Allowed movement under the resolved tolerance.
    pub limit: f64,
    pub regression: bool,
}

impl DeltaRow {
    pub fn delta(&self) -> f64 {
        self.new - self.base
    }
}

/// The outcome of one comparison: per-key rows plus the keys seen on only
/// one side (informational, never regressions).
#[derive(Debug, Default, Clone)]
pub struct DiffReport {
    pub rows: Vec<DeltaRow>,
    pub only_base: Vec<(&'static str, String)>,
    pub only_new: Vec<(&'static str, String)>,
}

impl DiffReport {
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| r.regression).count()
    }

    /// Render the report. `verbose` includes in-tolerance rows; otherwise
    /// only regressions and the one-sided summary counts appear.
    pub fn to_text(&self, verbose: bool) -> String {
        let mut out = String::new();
        let shown: Vec<&DeltaRow> = self
            .rows
            .iter()
            .filter(|r| verbose || r.regression)
            .collect();
        if !shown.is_empty() {
            let _ = writeln!(
                out,
                "{:<16} {:<44} {:>14} {:>14} {:>11} {:>10}  status",
                "section", "key", "base", "new", "delta", "limit"
            );
            for r in shown {
                let _ = writeln!(
                    out,
                    "{:<16} {:<44} {:>14.6} {:>14.6} {:>+11.4} {:>10.4}  {}",
                    r.section,
                    r.key,
                    r.base,
                    r.new,
                    r.delta(),
                    r.limit,
                    if r.regression { "REGRESSION" } else { "ok" }
                );
            }
        }
        for (label, list) in [
            ("only in base", &self.only_base),
            ("only in new", &self.only_new),
        ] {
            if !list.is_empty() {
                let _ = writeln!(out, "{label}: {} keys", list.len());
                if verbose {
                    for (section, key) in list {
                        let _ = writeln!(out, "  {section} {key}");
                    }
                }
            }
        }
        let _ = writeln!(
            out,
            "compared {} keys: {} regressions",
            self.rows.len(),
            self.regressions()
        );
        out
    }
}

/// Compare two sample sets under `spec`. Only keys present on both sides
/// are judged; a key regresses when its movement (absolute for two-sided
/// sections, increase for one-sided) exceeds the resolved tolerance.
pub fn diff_samples(base: &[Sample], new: &[Sample], spec: &ToleranceSpec) -> DiffReport {
    let index = |samples: &[Sample]| -> BTreeMap<(&'static str, String), (f64, bool)> {
        samples
            .iter()
            .map(|s| ((s.section, s.key.clone()), (s.value, s.one_sided)))
            .collect()
    };
    let base_map = index(base);
    let new_map = index(new);
    let mut report = DiffReport::default();
    for ((section, key), &(base_v, one_sided)) in &base_map {
        match new_map.get(&(section, key.clone())) {
            None => report.only_base.push((section, key.clone())),
            Some(&(new_v, _)) => {
                let limit = spec.lookup(section, key).limit(base_v);
                let delta = new_v - base_v;
                let excess = if one_sided { delta } else { delta.abs() };
                report.rows.push(DeltaRow {
                    section,
                    key: key.clone(),
                    base: base_v,
                    new: new_v,
                    limit,
                    regression: excess > limit,
                });
            }
        }
    }
    for (section, key) in new_map.keys() {
        if !base_map.contains_key(&(*section, key.clone())) {
            report.only_new.push((section, key.clone()));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parses_nested_documents() {
        let j = parse_json(r#"{"a": 1.5e-3, "b": {"c": [1, 2, null]}, "s": "x\"y", "t": true}"#)
            .expect("parses");
        assert_eq!(j.get("a").and_then(Json::as_num), Some(1.5e-3));
        assert_eq!(
            j.get("b").and_then(|b| b.get("c")),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.0), Json::Null]))
        );
        assert_eq!(j.get("s"), Some(&Json::Str("x\"y".to_string())));
        assert_eq!(j.get("t"), Some(&Json::Bool(true)));
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn tolerance_spec_parses_and_resolves() {
        let spec = ToleranceSpec::parse(
            r#"
# global slack
default_rel = 0.2
default_abs = 0.5

[counters]
default_rel = 0.0
default_abs = 0.0
"chaos.retries" = { rel = 0.5, abs = 2 }
"fig1/vivaldi.ticks" = 0.25

[kernels]
default_rel = "inf"
"#,
        )
        .expect("parses");
        // Global default reaches unknown sections.
        assert_eq!(
            spec.lookup("figures", "fig1"),
            Tolerance { rel: 0.2, abs: 0.5 }
        );
        // Section default.
        assert_eq!(
            spec.lookup("counters", "fig2/defense.ban"),
            Tolerance { rel: 0.0, abs: 0.0 }
        );
        // Per-key via fig-prefix stripping.
        assert_eq!(
            spec.lookup("counters", "chaos-crash/chaos.retries"),
            Tolerance { rel: 0.5, abs: 2.0 }
        );
        // Exact key beats the section default; bare number sets rel only.
        let t = spec.lookup("counters", "fig1/vivaldi.ticks");
        assert_eq!(t.rel, 0.25);
        assert_eq!(t.abs, 0.0);
        // inf = report-only.
        assert!(spec
            .lookup("kernels", "simplex_2d.mean")
            .limit(1.0)
            .is_infinite());
        assert!(ToleranceSpec::parse("nonsense line").is_err());
        assert!(ToleranceSpec::parse("[s]\nk = {rel = oops}").is_err());
    }

    #[test]
    fn stem_lookup_covers_quantile_subkeys() {
        let spec =
            ToleranceSpec::parse("[hists]\n\"nps.round_evals\" = { rel = 0.3 }\n").expect("parses");
        assert_eq!(spec.lookup("hists", "fig14/nps.round_evals.p99").rel, 0.3);
        assert_eq!(spec.lookup("hists", "nps.round_evals.count").rel, 0.3);
    }

    #[test]
    fn trace_samples_extract_counters_and_quantiles() {
        let lines = vec![
            TraceLine::Counter {
                metric: "defense.ban".into(),
                value: 4,
            },
            TraceLine::Hist {
                metric: "nps.round_evals".into(),
                count: 10,
                sum: 500.0,
                min: 10.0,
                max: 100.0,
                quantiles: Some([40.5, 90.5, 95.5, 99.5]),
            },
        ];
        let samples = samples_from_trace("figX", &lines);
        let find = |key: &str| {
            samples
                .iter()
                .find(|s| s.key == key)
                .unwrap_or_else(|| panic!("missing {key}"))
        };
        assert_eq!(find("figX/defense.ban").value, 4.0);
        assert_eq!(find("figX/nps.round_evals.mean").value, 50.0);
        assert_eq!(find("figX/nps.round_evals.p99").value, 99.5);
        assert!(!find("figX/defense.ban").one_sided);
    }

    #[test]
    fn bench_samples_cover_all_blocks() {
        let bench = parse_json(
            r#"{
                "schema": 3,
                "kernels": {"k1": {"mean_s": 1e-6, "median_s": 9e-7, "trimmed_mean_s": 9.5e-7, "p95_s": 2e-6, "min_s": 8e-7, "max_s": 5e-6, "samples": 100}},
                "evals_per_round": {"fig14": {"mean": 240.0, "median": 237.5, "rounds": 5000}},
                "obs": {"fig14": {"counters": {"simplex.evals": 123}, "hists": {"figure.rep_ns": {"count": 6, "mean": 1e6}}}},
                "figures": {"fig14": 0.4},
                "figures_total_s": 8.0
            }"#,
        )
        .expect("parses");
        let samples = samples_from_bench(&bench).expect("extracts");
        let find = |section: &str, key: &str| {
            samples
                .iter()
                .find(|s| s.section == section && s.key == key)
                .unwrap_or_else(|| panic!("missing {section} {key}"))
        };
        assert_eq!(find("kernels", "k1.mean").value, 1e-6);
        assert!(find("kernels", "k1.p95").one_sided);
        assert!(find("evals_per_round", "fig14.mean").one_sided);
        assert!(!find("evals_per_round", "fig14.rounds").one_sided);
        assert_eq!(find("counters", "fig14/simplex.evals").value, 123.0);
        assert_eq!(find("hists", "fig14/figure.rep_ns.mean").value, 1e6);
        assert_eq!(find("figures", "total").value, 8.0);
        // Schema-2 files (no obs block) still extract.
        let old = parse_json(r#"{"schema": 2, "figures": {"fig14": 0.5}}"#).expect("parses");
        assert_eq!(samples_from_bench(&old).expect("extracts").len(), 1);
        // Non-BENCH json is rejected.
        assert!(samples_from_bench(&parse_json("{}").unwrap()).is_err());
    }

    fn s(section: &'static str, key: &str, value: f64, one_sided: bool) -> Sample {
        Sample {
            section,
            key: key.to_string(),
            value,
            one_sided,
        }
    }

    #[test]
    fn diff_flags_regressions_by_sidedness() {
        let spec = ToleranceSpec::parse(
            "default_rel = 0.1\ndefault_abs = 0\n[counters]\ndefault_rel = 0.0\n",
        )
        .expect("parses");
        let base = vec![
            s("counters", "f/defense.ban", 10.0, false),
            s("evals_per_round", "f.mean", 100.0, true),
            s("evals_per_round", "g.mean", 100.0, true),
            s("figures", "gone", 1.0, true),
        ];
        let new = vec![
            // Counter drifted by 1 under rel 0: regression (two-sided).
            s("counters", "f/defense.ban", 11.0, false),
            // 2× evals: way past 10 %: regression (the CI self-test case).
            s("evals_per_round", "f.mean", 200.0, true),
            // 40 % *faster*: one-sided, not a regression.
            s("evals_per_round", "g.mean", 60.0, true),
            s("figures", "added", 1.0, true),
        ];
        let report = diff_samples(&base, &new, &spec);
        assert_eq!(report.regressions(), 2);
        let by_key = |k: &str| report.rows.iter().find(|r| r.key == k).expect("row");
        assert!(by_key("f/defense.ban").regression);
        assert!(by_key("f.mean").regression);
        assert!(!by_key("g.mean").regression);
        assert_eq!(report.only_base, vec![("figures", "gone".to_string())]);
        assert_eq!(report.only_new, vec![("figures", "added".to_string())]);
        let text = report.to_text(false);
        assert!(text.contains("REGRESSION"));
        assert!(text.contains("2 regressions"), "{text}");
        // Identical runs pass clean.
        let clean = diff_samples(&base, &base, &spec);
        assert_eq!(clean.regressions(), 0);
    }
}
