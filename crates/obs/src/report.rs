//! Render a parsed trace into a per-round digest — the library half of the
//! `obs-report` binary, kept here so the aggregation is unit-testable.

use crate::export::TraceLine;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One histogram row of a [`Digest`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistRow {
    pub metric: String,
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

/// One per-round aggregation row of a [`Digest`]: how many events of
/// `metric` fired in `round`, and their summed value.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRow {
    pub metric: String,
    pub round: u64,
    pub events: u64,
    pub sum: f64,
}

/// A trace reduced to tables: run identity, whole-run counters and
/// histogram summaries, and per-round event aggregates.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Digest {
    pub run: String,
    pub fig: String,
    pub seed: u64,
    pub scale: String,
    /// `(metric, value)`, sorted by metric name.
    pub counters: Vec<(String, u64)>,
    /// Sorted by metric name.
    pub hists: Vec<HistRow>,
    /// Sorted by metric name, then round.
    pub rounds: Vec<RoundRow>,
}

/// Aggregate parsed trace lines into a [`Digest`]. Events collapse over
/// repetitions and nodes onto `(metric, round)`.
pub fn digest(lines: &[TraceLine]) -> Digest {
    let mut d = Digest::default();
    let mut rounds: BTreeMap<(String, u64), (u64, f64)> = BTreeMap::new();
    for line in lines {
        match line {
            TraceLine::Meta {
                run,
                fig,
                seed,
                scale,
                ..
            } => {
                d.run = run.clone();
                d.fig = fig.clone();
                d.seed = *seed;
                d.scale = scale.clone();
            }
            TraceLine::Counter { metric, value } => d.counters.push((metric.clone(), *value)),
            TraceLine::Hist {
                metric,
                count,
                sum,
                min,
                max,
            } => d.hists.push(HistRow {
                metric: metric.clone(),
                count: *count,
                sum: *sum,
                min: *min,
                max: *max,
            }),
            TraceLine::Event {
                metric,
                round,
                value,
                ..
            } => {
                let slot = rounds.entry((metric.clone(), *round)).or_insert((0, 0.0));
                slot.0 += 1;
                slot.1 += value;
            }
        }
    }
    d.counters.sort();
    d.hists.sort_by(|a, b| a.metric.cmp(&b.metric));
    d.rounds = rounds
        .into_iter()
        .map(|((metric, round), (events, sum))| RoundRow {
            metric,
            round,
            events,
            sum,
        })
        .collect();
    d
}

impl Digest {
    /// Human-readable tables.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {} (run {}, seed {}, scale {})",
            self.fig, self.run, self.seed, self.scale
        );
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (metric, value) in &self.counters {
                let _ = writeln!(out, "  {metric:<36} {value:>12}");
            }
        }
        if !self.hists.is_empty() {
            let _ = writeln!(
                out,
                "histograms: {:<25} {:>10} {:>14} {:>14} {:>14}",
                "", "count", "mean", "min", "max"
            );
            for h in &self.hists {
                let _ = writeln!(
                    out,
                    "  {:<34} {:>10} {:>14.1} {:>14.1} {:>14.1}",
                    h.metric,
                    h.count,
                    h.sum / h.count.max(1) as f64,
                    h.min,
                    h.max
                );
            }
        }
        if !self.rounds.is_empty() {
            let _ = writeln!(
                out,
                "per-round events: {:<19} {:>10} {:>10} {:>14}",
                "", "round", "events", "sum"
            );
            for r in &self.rounds {
                let _ = writeln!(
                    out,
                    "  {:<34} {:>10} {:>10} {:>14.1}",
                    r.metric, r.round, r.events, r.sum
                );
            }
        }
        out
    }

    /// Machine-readable CSV: `kind,metric,round,count,sum,min,max` with
    /// empty cells where a column does not apply.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,metric,round,count,sum,min,max\n");
        for (metric, value) in &self.counters {
            let _ = writeln!(out, "counter,{metric},,{value},,,");
        }
        for h in &self.hists {
            let _ = writeln!(
                out,
                "hist,{},,{},{},{},{}",
                h.metric, h.count, h.sum, h.min, h.max
            );
        }
        for r in &self.rounds {
            let _ = writeln!(
                out,
                "round,{},{},{},{},,",
                r.metric, r.round, r.events, r.sum
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_lines() -> Vec<TraceLine> {
        vec![
            TraceLine::Meta {
                schema: 1,
                run: "r".into(),
                fig: "figX".into(),
                seed: 9,
                scale: "smoke".into(),
            },
            TraceLine::Counter {
                metric: "b.counter".into(),
                value: 3,
            },
            TraceLine::Counter {
                metric: "a.counter".into(),
                value: 1,
            },
            TraceLine::Event {
                metric: "e.flag".into(),
                rep: 0,
                round: 2,
                node: Some(1),
                value: 1.0,
            },
            TraceLine::Event {
                metric: "e.flag".into(),
                rep: 1,
                round: 2,
                node: Some(4),
                value: 1.0,
            },
            TraceLine::Event {
                metric: "e.flag".into(),
                rep: 0,
                round: 5,
                node: Some(1),
                value: 1.0,
            },
        ]
    }

    #[test]
    fn digest_sorts_counters_and_collapses_rounds() {
        let d = digest(&sample_lines());
        assert_eq!(d.fig, "figX");
        assert_eq!(
            d.counters,
            vec![("a.counter".to_string(), 1), ("b.counter".to_string(), 3)]
        );
        assert_eq!(
            d.rounds,
            vec![
                RoundRow {
                    metric: "e.flag".into(),
                    round: 2,
                    events: 2,
                    sum: 2.0
                },
                RoundRow {
                    metric: "e.flag".into(),
                    round: 5,
                    events: 1,
                    sum: 1.0
                },
            ]
        );
        let text = d.to_text();
        assert!(text.contains("trace figX"));
        assert!(text.contains("a.counter"));
        let csv = d.to_csv();
        assert!(csv.starts_with("kind,metric,round,count,sum,min,max\n"));
        assert!(csv.contains("round,e.flag,2,2,2,,"));
    }
}
