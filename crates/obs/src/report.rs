//! Render a parsed trace into a per-round digest — the library half of the
//! `obs-report` binary, kept here so the aggregation is unit-testable.

use crate::export::TraceLine;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One histogram row of a [`Digest`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistRow {
    pub metric: String,
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    /// `[p50, p90, p95, p99]`; `None` for schema-1 traces.
    pub quantiles: Option<[f64; 4]>,
}

/// One per-round aggregation row of a [`Digest`]: how many events of
/// `metric` fired in `round`, and their summed value.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRow {
    pub metric: String,
    pub round: u64,
    pub events: u64,
    pub sum: f64,
}

/// A trace reduced to tables: run identity, whole-run counters and
/// histogram summaries, and per-round event aggregates.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Digest {
    pub run: String,
    pub fig: String,
    pub seed: u64,
    pub scale: String,
    /// `(metric, value)`, sorted by metric name.
    pub counters: Vec<(String, u64)>,
    /// Sorted by metric name.
    pub hists: Vec<HistRow>,
    /// Sorted by metric name, then round.
    pub rounds: Vec<RoundRow>,
}

/// Aggregate parsed trace lines into a [`Digest`]. Events collapse over
/// repetitions and nodes onto `(metric, round)`.
pub fn digest(lines: &[TraceLine]) -> Digest {
    let mut d = Digest::default();
    let mut rounds: BTreeMap<(String, u64), (u64, f64)> = BTreeMap::new();
    for line in lines {
        match line {
            TraceLine::Meta {
                run,
                fig,
                seed,
                scale,
                ..
            } => {
                d.run = run.clone();
                d.fig = fig.clone();
                d.seed = *seed;
                d.scale = scale.clone();
            }
            TraceLine::Counter { metric, value } => d.counters.push((metric.clone(), *value)),
            TraceLine::Hist {
                metric,
                count,
                sum,
                min,
                max,
                quantiles,
            } => d.hists.push(HistRow {
                metric: metric.clone(),
                count: *count,
                sum: *sum,
                min: *min,
                max: *max,
                quantiles: *quantiles,
            }),
            TraceLine::Event {
                metric,
                round,
                value,
                ..
            } => {
                let slot = rounds.entry((metric.clone(), *round)).or_insert((0, 0.0));
                slot.0 += 1;
                slot.1 += value;
            }
        }
    }
    d.counters.sort();
    d.hists.sort_by(|a, b| a.metric.cmp(&b.metric));
    d.rounds = rounds
        .into_iter()
        .map(|((metric, round), (events, sum))| RoundRow {
            metric,
            round,
            events,
            sum,
        })
        .collect();
    d
}

impl Digest {
    /// Human-readable tables.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {} (run {}, seed {}, scale {})",
            self.fig, self.run, self.seed, self.scale
        );
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (metric, value) in &self.counters {
                let _ = writeln!(out, "  {metric:<36} {value:>12}");
            }
        }
        if !self.hists.is_empty() {
            let _ = writeln!(
                out,
                "histograms: {:<25} {:>10} {:>14} {:>14} {:>14} {:>14} {:>14}",
                "", "count", "mean", "min", "max", "p50", "p99"
            );
            for h in &self.hists {
                let (p50, p99) = match h.quantiles {
                    Some([p50, _, _, p99]) => (format!("{p50:.1}"), format!("{p99:.1}")),
                    None => ("-".to_string(), "-".to_string()),
                };
                let _ = writeln!(
                    out,
                    "  {:<34} {:>10} {:>14.1} {:>14.1} {:>14.1} {:>14} {:>14}",
                    h.metric,
                    h.count,
                    h.sum / h.count.max(1) as f64,
                    h.min,
                    h.max,
                    p50,
                    p99
                );
            }
        }
        if !self.rounds.is_empty() {
            let _ = writeln!(
                out,
                "per-round events: {:<19} {:>10} {:>10} {:>14}",
                "", "round", "events", "sum"
            );
            for r in &self.rounds {
                let _ = writeln!(
                    out,
                    "  {:<34} {:>10} {:>10} {:>14.1}",
                    r.metric, r.round, r.events, r.sum
                );
            }
        }
        out
    }

    /// Machine-readable CSV:
    /// `kind,metric,round,count,sum,min,max,p50,p90,p95,p99` with empty
    /// cells where a column does not apply.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,metric,round,count,sum,min,max,p50,p90,p95,p99\n");
        for (metric, value) in &self.counters {
            let _ = writeln!(out, "counter,{metric},,{value},,,,,,,");
        }
        for h in &self.hists {
            let q = match h.quantiles {
                Some([p50, p90, p95, p99]) => format!("{p50},{p90},{p95},{p99}"),
                None => ",,,".to_string(),
            };
            let _ = writeln!(
                out,
                "hist,{},,{},{},{},{},{q}",
                h.metric, h.count, h.sum, h.min, h.max
            );
        }
        for r in &self.rounds {
            let _ = writeln!(
                out,
                "round,{},{},{},{},,,,,,",
                r.metric, r.round, r.events, r.sum
            );
        }
        out
    }
}

/// One row of the cross-trace health matrix: the defense / chaos /
/// warm-start vitals of a single figure's trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRow {
    pub fig: String,
    pub accepts: u64,
    pub rejects: u64,
    pub bans: u64,
    pub reinstates: u64,
    /// Injected faults: `chaos.crashes + chaos.timeouts + chaos.burst_losses`.
    pub faults: u64,
    /// Recovery actions: `chaos.restarts + chaos.retries + chaos.failovers
    /// + chaos.leases`.
    pub recoveries: u64,
    /// `simplex.warm_start / (warm_start + cold_restart)`; `NaN` when the
    /// figure ran no Simplex fits.
    pub warm_share: f64,
}

/// Reduce one digest to its health-matrix row.
pub fn summarize(d: &Digest) -> SummaryRow {
    let c = |name: &str| -> u64 {
        d.counters
            .iter()
            .find(|(m, _)| m == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    let warm = c("simplex.warm_start");
    let cold = c("simplex.cold_restart");
    SummaryRow {
        fig: d.fig.clone(),
        accepts: c("defense.accept"),
        rejects: c("defense.reject"),
        bans: c("defense.ban"),
        reinstates: c("defense.reinstate"),
        faults: c("chaos.crashes") + c("chaos.timeouts") + c("chaos.burst_losses"),
        recoveries: c("chaos.restarts")
            + c("chaos.retries")
            + c("chaos.failovers")
            + c("chaos.leases"),
        warm_share: warm as f64 / (warm + cold) as f64,
    }
}

/// Render the health matrix (one row per trace) as an aligned text table.
pub fn summary_text(rows: &[SummaryRow]) -> String {
    let mut out = format!(
        "{:<28} {:>10} {:>10} {:>8} {:>8} {:>8} {:>10} {:>8}\n",
        "fig", "accepts", "rejects", "bans", "reinst", "faults", "recover", "warm%"
    );
    for r in rows {
        let warm = if r.warm_share.is_nan() {
            "-".to_string()
        } else {
            format!("{:.1}", r.warm_share * 100.0)
        };
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>10} {:>8} {:>8} {:>8} {:>10} {:>8}",
            r.fig, r.accepts, r.rejects, r.bans, r.reinstates, r.faults, r.recoveries, warm
        );
    }
    out
}

/// Render the health matrix as CSV.
pub fn summary_csv(rows: &[SummaryRow]) -> String {
    let mut out =
        String::from("fig,accepts,rejects,bans,reinstates,faults,recoveries,warm_share\n");
    for r in rows {
        let warm = if r.warm_share.is_nan() {
            String::new()
        } else {
            format!("{}", r.warm_share)
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{warm}",
            r.fig, r.accepts, r.rejects, r.bans, r.reinstates, r.faults, r.recoveries
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_lines() -> Vec<TraceLine> {
        vec![
            TraceLine::Meta {
                schema: 1,
                run: "r".into(),
                fig: "figX".into(),
                seed: 9,
                scale: "smoke".into(),
            },
            TraceLine::Counter {
                metric: "b.counter".into(),
                value: 3,
            },
            TraceLine::Counter {
                metric: "a.counter".into(),
                value: 1,
            },
            TraceLine::Event {
                metric: "e.flag".into(),
                rep: 0,
                round: 2,
                node: Some(1),
                value: 1.0,
            },
            TraceLine::Event {
                metric: "e.flag".into(),
                rep: 1,
                round: 2,
                node: Some(4),
                value: 1.0,
            },
            TraceLine::Event {
                metric: "e.flag".into(),
                rep: 0,
                round: 5,
                node: Some(1),
                value: 1.0,
            },
        ]
    }

    #[test]
    fn digest_sorts_counters_and_collapses_rounds() {
        let d = digest(&sample_lines());
        assert_eq!(d.fig, "figX");
        assert_eq!(
            d.counters,
            vec![("a.counter".to_string(), 1), ("b.counter".to_string(), 3)]
        );
        assert_eq!(
            d.rounds,
            vec![
                RoundRow {
                    metric: "e.flag".into(),
                    round: 2,
                    events: 2,
                    sum: 2.0
                },
                RoundRow {
                    metric: "e.flag".into(),
                    round: 5,
                    events: 1,
                    sum: 1.0
                },
            ]
        );
        let text = d.to_text();
        assert!(text.contains("trace figX"));
        assert!(text.contains("a.counter"));
        let csv = d.to_csv();
        assert!(csv.starts_with("kind,metric,round,count,sum,min,max,p50,p90,p95,p99\n"));
        assert!(csv.contains("round,e.flag,2,2,2,,,,,,"));
    }

    #[test]
    fn hist_quantiles_flow_into_digest_outputs() {
        let lines = vec![
            TraceLine::Meta {
                schema: 2,
                run: "r".into(),
                fig: "figQ".into(),
                seed: 9,
                scale: "smoke".into(),
            },
            TraceLine::Hist {
                metric: "h.q".into(),
                count: 4,
                sum: 10.0,
                min: 1.0,
                max: 4.0,
                quantiles: Some([2.5, 4.5, 4.5, 4.5]),
            },
        ];
        let d = digest(&lines);
        assert_eq!(d.hists[0].quantiles, Some([2.5, 4.5, 4.5, 4.5]));
        assert!(d.to_csv().contains("hist,h.q,,4,10,1,4,2.5,4.5,4.5,4.5"));
        assert!(d.to_text().contains("p50"));
    }

    #[test]
    fn summary_reduces_vitals() {
        let mk = |fig: &str, counters: Vec<(&str, u64)>| Digest {
            fig: fig.to_string(),
            counters: counters
                .into_iter()
                .map(|(m, v)| (m.to_string(), v))
                .collect(),
            ..Digest::default()
        };
        let chaos = mk(
            "chaos-x",
            vec![
                ("chaos.crashes", 3),
                ("chaos.restarts", 2),
                ("chaos.retries", 5),
                ("defense.ban", 7),
                ("defense.reinstate", 1),
                ("simplex.warm_start", 30),
                ("simplex.cold_restart", 10),
            ],
        );
        let quiet = mk("fig1", vec![]);
        let rows = vec![summarize(&chaos), summarize(&quiet)];
        assert_eq!(rows[0].faults, 3);
        assert_eq!(rows[0].recoveries, 7);
        assert_eq!(rows[0].bans, 7);
        assert!((rows[0].warm_share - 0.75).abs() < 1e-12);
        assert!(rows[1].warm_share.is_nan());
        let text = summary_text(&rows);
        assert!(text.contains("chaos-x") && text.contains("75.0"));
        let csv = summary_csv(&rows);
        assert!(csv.starts_with("fig,accepts,"));
        assert!(csv.contains("chaos-x,0,0,7,1,3,7,0.75"));
        assert!(csv.contains("fig1,0,0,0,0,0,0,\n"));
    }
}
