//! Shared HDR-style log-bucket geometry for every histogram in this crate.
//!
//! Both recording planes ([`GlobalHist`](crate::GlobalHist) on the
//! always-on aggregate side, [`HistData`](crate::HistData) on the gated
//! side) bucket samples with the same scheme: values below
//! [`SUB_BUCKETS`] get one bucket each (exact), and every power-of-two
//! magnitude above that is split into [`SUB_BUCKETS`] linear sub-buckets.
//! A bucket's width therefore grows with its magnitude, keeping the
//! *relative* quantization error bounded by `2^-SUB_BITS` (≈ 3.1 %)
//! across the whole `u64` range — the classic HdrHistogram trade.
//!
//! Quantile extraction ([`quantile_from_buckets`]) is nearest-rank over
//! the bucket counts, reporting the bucket midpoint: the estimate for any
//! quantile is within one bucket width of the exact sample value
//! (property-pinned in `tests/hdr_properties.rs`).

/// Sub-bucket resolution: each power-of-two magnitude is split into
/// `2^SUB_BITS` linear sub-buckets.
pub const SUB_BITS: u32 = 5;

/// Sub-buckets per magnitude (`2^SUB_BITS`); also the top of the exact
/// range — values below this get a bucket each.
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Total bucket count covering all of `u64`: the exact range plus one set
/// of sub-buckets for each of the `64 - SUB_BITS` magnitudes above it
/// (msb in `SUB_BITS..=63`).
pub const BUCKET_COUNT: usize =
    SUB_BUCKETS as usize + (64 - SUB_BITS as usize) * SUB_BUCKETS as usize;

/// Bucket index of a sample value.
#[inline]
pub fn index_of(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let major = (msb - SUB_BITS) as usize;
    let sub = ((value >> major) - SUB_BUCKETS) as usize;
    SUB_BUCKETS as usize + major * SUB_BUCKETS as usize + sub
}

/// Value range `[lo, hi)` covered by bucket `index`. The very last
/// bucket's upper bound is 2^64, which does not fit in `u64`; it is
/// reported as `u64::MAX` (the bucket is `[lo, u64::MAX]` inclusive).
pub fn bounds_of(index: usize) -> (u64, u64) {
    debug_assert!(index < BUCKET_COUNT);
    if (index as u64) < SUB_BUCKETS {
        return (index as u64, index as u64 + 1);
    }
    let major = (index - SUB_BUCKETS as usize) / SUB_BUCKETS as usize;
    let sub = ((index - SUB_BUCKETS as usize) % SUB_BUCKETS as usize) as u64;
    let lo = (SUB_BUCKETS + sub) << major;
    (lo, lo.saturating_add(1u64 << major))
}

/// Width of the bucket containing `value` — the quantization bound
/// quantile estimates are judged against.
pub fn width_of(value: u64) -> u64 {
    let (lo, hi) = bounds_of(index_of(value));
    hi - lo
}

/// Midpoint of bucket `index` — the value a quantile estimate reports.
pub fn midpoint_of(index: usize) -> f64 {
    let (lo, hi) = bounds_of(index);
    lo as f64 + (hi - lo) as f64 / 2.0
}

/// Clamp an `f64` sample onto the non-negative integer domain the buckets
/// cover (negative values land in bucket 0, huge ones in the last bucket).
#[inline]
pub fn value_to_u64(value: f64) -> u64 {
    if value <= 0.0 {
        0
    } else if value >= u64::MAX as f64 {
        u64::MAX
    } else {
        value as u64
    }
}

/// Nearest-rank quantile over bucket counts: the midpoint of the bucket
/// holding the `ceil(q·count)`-th sample. `NaN` when empty; `q` outside
/// `[0, 1]` clamps.
pub fn quantile_from_buckets(buckets: &[u64], count: u64, q: f64) -> f64 {
    if count == 0 || buckets.is_empty() {
        return f64::NAN;
    }
    let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= target {
            return midpoint_of(i);
        }
    }
    // Counts summed short of `count`: inconsistent caller bookkeeping.
    debug_assert!(false, "bucket counts sum below the sample count");
    f64::NAN
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_range_is_exact() {
        for v in 0..SUB_BUCKETS {
            assert_eq!(index_of(v), v as usize);
            assert_eq!(bounds_of(v as usize), (v, v + 1));
            assert_eq!(width_of(v), 1);
        }
    }

    #[test]
    fn buckets_partition_the_domain() {
        // Every bucket's hi is the next bucket's lo, starting from 0.
        let mut expect_lo = 0u64;
        for i in 0..BUCKET_COUNT {
            let (lo, hi) = bounds_of(i);
            assert_eq!(lo, expect_lo, "bucket {i} not contiguous");
            assert!(hi > lo);
            expect_lo = hi;
        }
        // And index_of agrees with the bounds at edges and interiors.
        for i in (0..BUCKET_COUNT).step_by(17) {
            let (lo, hi) = bounds_of(i);
            assert_eq!(index_of(lo), i);
            assert_eq!(index_of(hi - 1), i);
            assert_eq!(index_of(lo + (hi - lo) / 2), i);
        }
    }

    #[test]
    fn relative_width_is_bounded() {
        for v in [
            33u64,
            100,
            1_000,
            123_456,
            1_000_000_000,
            u64::MAX / 3,
            u64::MAX,
        ] {
            let w = width_of(v);
            assert!(
                (w as f64) <= (v as f64) / (SUB_BUCKETS as f64) * 2.0,
                "width {w} too coarse for {v}"
            );
        }
    }

    #[test]
    fn top_value_lands_in_last_bucket() {
        assert_eq!(index_of(u64::MAX), BUCKET_COUNT - 1);
        let (lo, hi) = bounds_of(BUCKET_COUNT - 1);
        assert!(lo < hi && hi == u64::MAX);
    }

    #[test]
    fn quantiles_walk_the_ranks() {
        let mut buckets = vec![0u64; BUCKET_COUNT];
        // Samples: 10 ×3, 1000 ×6, 100000 ×1.
        buckets[index_of(10)] += 3;
        buckets[index_of(1000)] += 6;
        buckets[index_of(100_000)] += 1;
        let q = |p| quantile_from_buckets(&buckets, 10, p);
        assert_eq!(q(0.0), midpoint_of(index_of(10)));
        assert_eq!(q(0.3), midpoint_of(index_of(10)));
        assert_eq!(q(0.5), midpoint_of(index_of(1000)));
        assert_eq!(q(0.9), midpoint_of(index_of(1000)));
        assert_eq!(q(1.0), midpoint_of(index_of(100_000)));
        assert!(quantile_from_buckets(&buckets, 0, 0.5).is_nan());
    }

    #[test]
    fn f64_clamping() {
        assert_eq!(value_to_u64(-3.0), 0);
        assert_eq!(value_to_u64(0.9), 0);
        assert_eq!(value_to_u64(31.7), 31);
        assert_eq!(value_to_u64(f64::MAX), u64::MAX);
    }
}
