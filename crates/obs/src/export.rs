//! The `TraceSink` JSONL format: render an [`ObsReport`] to one JSON
//! object per line, and parse it back (the vendored serde is a no-op stub,
//! so both directions are hand-rolled against the small fixed schema
//! documented in the crate root).

use crate::record::{ObsReport, NO_NODE};
use crate::registry::metric_name;

/// Version stamped into every `meta` line. Schema 2 added the
/// `p50`/`p90`/`p95`/`p99` fields on `hist` lines; [`parse_line`] treats
/// them as optional so schema-1 traces still parse.
pub const TRACE_SCHEMA: u32 = 2;

/// Identity of one trace: which run, figure, seed, and scale produced it.
/// Deliberately free of wall-clock fields so traces of the same run are
/// byte-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    pub run: String,
    pub fig: String,
    pub seed: u64,
    pub scale: String,
}

/// One parsed line of a trace file.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceLine {
    Meta {
        schema: u32,
        run: String,
        fig: String,
        seed: u64,
        scale: String,
    },
    Counter {
        metric: String,
        value: u64,
    },
    Hist {
        metric: String,
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
        /// `[p50, p90, p95, p99]` from the HDR buckets; `None` when parsed
        /// from a schema-1 trace that predates quantile extraction.
        quantiles: Option<[f64; 4]>,
    },
    Event {
        metric: String,
        rep: i64,
        round: u64,
        node: Option<u32>,
        value: f64,
    },
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render `report` as JSONL: the `meta` line, counters, histograms, then
/// events in recording order. `f64` payloads use Rust's shortest
/// round-trippable formatting, so parse-then-render is lossless.
pub fn render_jsonl(meta: &TraceMeta, report: &ObsReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"type\":\"meta\",\"schema\":{},\"run\":\"{}\",\"fig\":\"{}\",\"seed\":{},\"scale\":\"{}\"}}\n",
        TRACE_SCHEMA,
        json_escape(&meta.run),
        json_escape(&meta.fig),
        meta.seed,
        json_escape(&meta.scale),
    ));
    for &(id, value) in report.counters() {
        out.push_str(&format!(
            "{{\"type\":\"counter\",\"metric\":\"{}\",\"value\":{value}}}\n",
            json_escape(metric_name(id)),
        ));
    }
    for (id, h) in report.hists() {
        let (p50, p90, p95, p99) = h.percentiles();
        out.push_str(&format!(
            "{{\"type\":\"hist\",\"metric\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{p50},\"p90\":{p90},\"p95\":{p95},\"p99\":{p99}}}\n",
            json_escape(metric_name(*id)),
            h.count,
            h.sum,
            h.min,
            h.max,
        ));
    }
    for e in report.events() {
        let node = if e.node == NO_NODE {
            "null".to_string()
        } else {
            e.node.to_string()
        };
        out.push_str(&format!(
            "{{\"type\":\"event\",\"metric\":\"{}\",\"rep\":{},\"round\":{},\"node\":{node},\"value\":{}}}\n",
            json_escape(metric_name(e.metric)),
            e.rep,
            e.round,
            e.value,
        ));
    }
    out
}

/// A flat JSON value as this schema uses them.
#[derive(Debug, Clone, PartialEq)]
enum JsonVal {
    Str(String),
    Num(f64),
    Null,
}

/// Parse one flat JSON object (`{"key":value,...}` with string, number, or
/// null values — all this schema needs).
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonVal)>, String> {
    let mut chars = line.trim().char_indices().peekable();
    let src = line.trim();
    let mut fields = Vec::new();

    let expect =
        |chars: &mut std::iter::Peekable<std::str::CharIndices>, want: char| match chars.next() {
            Some((_, c)) if c == want => Ok(()),
            other => Err(format!("expected {want:?}, found {other:?}")),
        };
    fn skip_ws(chars: &mut std::iter::Peekable<std::str::CharIndices>) {
        while matches!(chars.peek(), Some(&(_, c)) if c.is_whitespace()) {
            chars.next();
        }
    }
    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::CharIndices>,
    ) -> Result<String, String> {
        match chars.next() {
            Some((_, '"')) => {}
            other => return Err(format!("expected string, found {other:?}")),
        }
        let mut s = String::new();
        loop {
            match chars.next() {
                Some((_, '"')) => return Ok(s),
                Some((_, '\\')) => match chars.next() {
                    Some((_, '"')) => s.push('"'),
                    Some((_, '\\')) => s.push('\\'),
                    Some((_, 'n')) => s.push('\n'),
                    Some((_, 't')) => s.push('\t'),
                    Some((_, 'r')) => s.push('\r'),
                    Some((_, 'u')) => {
                        let hex: String = (0..4)
                            .filter_map(|_| chars.next().map(|(_, c)| c))
                            .collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        s.push(char::from_u32(code).ok_or("non-scalar \\u escape")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some((_, c)) => s.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    skip_ws(&mut chars);
    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if matches!(chars.peek(), Some(&(_, '}'))) {
        chars.next();
        return Ok(fields);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        expect(&mut chars, ':')?;
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some(&(_, '"')) => JsonVal::Str(parse_string(&mut chars)?),
            Some(&(start, 'n')) => {
                for _ in 0..4 {
                    chars.next();
                }
                if src[start..].starts_with("null") {
                    JsonVal::Null
                } else {
                    return Err(format!("bad literal at {start}"));
                }
            }
            Some(&(start, _)) => {
                let mut end = start;
                while matches!(
                    chars.peek(),
                    Some(&(_, c)) if c.is_ascii_digit() || "+-.eE".contains(c)
                ) {
                    end = chars.next().expect("peeked").0 + 1;
                }
                let text = &src[start..end];
                JsonVal::Num(text.parse().map_err(|_| format!("bad number {text:?}"))?)
            }
            None => return Err("truncated object".to_string()),
        };
        fields.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => break,
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if let Some((i, c)) = chars.next() {
        return Err(format!("trailing {c:?} at {i}"));
    }
    Ok(fields)
}

struct Fields(Vec<(String, JsonVal)>);

impl Fields {
    fn get(&self, key: &str) -> Result<&JsonVal, String> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field {key:?}"))
    }
    fn str(&self, key: &str) -> Result<String, String> {
        match self.get(key)? {
            JsonVal::Str(s) => Ok(s.clone()),
            other => Err(format!("field {key:?} is not a string: {other:?}")),
        }
    }
    fn num(&self, key: &str) -> Result<f64, String> {
        match self.get(key)? {
            JsonVal::Num(n) => Ok(*n),
            other => Err(format!("field {key:?} is not a number: {other:?}")),
        }
    }
    fn uint(&self, key: &str) -> Result<u64, String> {
        let n = self.num(key)?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(format!("field {key:?} is not a non-negative integer: {n}"));
        }
        Ok(n as u64)
    }
}

/// Parse one trace line.
pub fn parse_line(line: &str) -> Result<TraceLine, String> {
    let fields = Fields(parse_flat_object(line)?);
    match fields.str("type")?.as_str() {
        "meta" => Ok(TraceLine::Meta {
            schema: fields.uint("schema")? as u32,
            run: fields.str("run")?,
            fig: fields.str("fig")?,
            seed: fields.uint("seed")?,
            scale: fields.str("scale")?,
        }),
        "counter" => Ok(TraceLine::Counter {
            metric: fields.str("metric")?,
            value: fields.uint("value")?,
        }),
        "hist" => Ok(TraceLine::Hist {
            metric: fields.str("metric")?,
            count: fields.uint("count")?,
            sum: fields.num("sum")?,
            min: fields.num("min")?,
            max: fields.num("max")?,
            // Schema 1 lines have no quantile fields; require all four
            // once any is present.
            quantiles: if fields.get("p50").is_ok() {
                Some([
                    fields.num("p50")?,
                    fields.num("p90")?,
                    fields.num("p95")?,
                    fields.num("p99")?,
                ])
            } else {
                None
            },
        }),
        "event" => Ok(TraceLine::Event {
            metric: fields.str("metric")?,
            rep: fields.num("rep")? as i64,
            round: fields.uint("round")?,
            node: match fields.get("node")? {
                JsonVal::Null => None,
                JsonVal::Num(n) => Some(*n as u32),
                other => return Err(format!("field \"node\" is not a number or null: {other:?}")),
            },
            value: fields.num("value")?,
        }),
        other => Err(format!("unknown line type {other:?}")),
    }
}

/// Parse a whole trace, reporting the first bad line by number. Requires a
/// `meta` line first (the schema's one ordering guarantee).
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceLine>, String> {
    let mut lines = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if lines.is_empty() && !matches!(parsed, TraceLine::Meta { .. }) {
            return Err("line 1: first line must be a meta record".to_string());
        }
        lines.push(parsed);
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{counter_add, drain, event, observe, reset, NO_NODE};
    use crate::registry::metric;
    use crate::{set_mode, ObsMode};

    #[test]
    fn render_parse_round_trip() {
        let a = metric("test.export.counter");
        let b = metric("test.export.hist");
        let c = metric("test.export.event");
        set_mode(ObsMode::Trace);
        reset();
        counter_add(a, 42);
        observe(b, 1.5);
        observe(b, 2.25);
        event(c, 7, 3, 0.125);
        event(c, 8, NO_NODE, -1.0);
        let report = drain();
        set_mode(ObsMode::Off);

        let meta = TraceMeta {
            run: "test-run".to_string(),
            fig: "fig\"x\"".to_string(), // exercises escaping
            seed: 2006,
            scale: "smoke".to_string(),
        };
        let text = render_jsonl(&meta, &report);
        let lines = parse_jsonl(&text).expect("parses");
        assert_eq!(
            lines[0],
            TraceLine::Meta {
                schema: TRACE_SCHEMA,
                run: "test-run".to_string(),
                fig: "fig\"x\"".to_string(),
                seed: 2006,
                scale: "smoke".to_string(),
            }
        );
        assert!(lines.contains(&TraceLine::Counter {
            metric: "test.export.counter".to_string(),
            value: 42
        }));
        // Samples 1.5 and 2.25 land in the exact HDR buckets [1,2) and
        // [2,3): p50 is the first sample's midpoint, the rest the second's.
        assert!(lines.contains(&TraceLine::Hist {
            metric: "test.export.hist".to_string(),
            count: 2,
            sum: 3.75,
            min: 1.5,
            max: 2.25,
            quantiles: Some([1.5, 2.5, 2.5, 2.5]),
        }));
        assert!(lines.contains(&TraceLine::Event {
            metric: "test.export.event".to_string(),
            rep: -1,
            round: 7,
            node: Some(3),
            value: 0.125
        }));
        assert!(lines.contains(&TraceLine::Event {
            metric: "test.export.event".to_string(),
            rep: -1,
            round: 8,
            node: None,
            value: -1.0
        }));
        // Render of the parse is byte-identical (lossless f64 formatting).
        assert_eq!(render_jsonl(&meta, &report), text);
    }

    #[test]
    fn schema1_hist_lines_still_parse() {
        // A pre-quantile (schema 1) hist line: quantiles come back None.
        let line =
            "{\"type\":\"hist\",\"metric\":\"m\",\"count\":2,\"sum\":3.0,\"min\":1.0,\"max\":2.0}";
        assert_eq!(
            parse_line(line).expect("parses"),
            TraceLine::Hist {
                metric: "m".to_string(),
                count: 2,
                sum: 3.0,
                min: 1.0,
                max: 2.0,
                quantiles: None,
            }
        );
        // A partial quantile set is an error, not a silent None.
        let partial = "{\"type\":\"hist\",\"metric\":\"m\",\"count\":2,\"sum\":3.0,\"min\":1.0,\"max\":2.0,\"p50\":1.5}";
        assert!(parse_line(partial).unwrap_err().contains("p90"));
    }

    #[test]
    fn bad_lines_are_rejected_with_line_numbers() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line("{\"type\":\"mystery\"}").is_err());
        assert!(parse_line("{\"type\":\"counter\",\"metric\":\"m\"}")
            .unwrap_err()
            .contains("value"));
        let err = parse_jsonl(
            "{\"type\":\"meta\",\"schema\":1,\"run\":\"r\",\"fig\":\"f\",\"seed\":1,\"scale\":\"s\"}\ngarbage\n",
        )
        .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = parse_jsonl("{\"type\":\"counter\",\"metric\":\"m\",\"value\":1}\n").unwrap_err();
        assert!(err.contains("meta"), "{err}");
    }
}
