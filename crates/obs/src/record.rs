//! The gated recording plane: per-thread counters, histograms, spans, and
//! event buffers, drained into [`ObsReport`]s and merged sequentially.

use crate::hdr;
use crate::registry::MetricId;
use crate::ring;
use crate::{enabled, mode, ObsMode};
use std::cell::RefCell;
use std::time::Instant;

/// Bucket count for per-thread histograms — the shared HDR layout from
/// [`crate::hdr`], same as the aggregate plane.
pub const HIST_BUCKETS: usize = hdr::BUCKET_COUNT;

/// `node` value for events with no node subject.
pub const NO_NODE: u32 = u32::MAX;

/// `rep` value for events recorded outside any repetition (see
/// [`ObsReport::retag_rep`]).
pub const NO_REP: i32 = -1;

/// One structured event: something that happened to `node` at `round`
/// during repetition `rep`, with a metric-specific `value` payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    pub metric: MetricId,
    pub rep: i32,
    pub round: u64,
    pub node: u32,
    pub value: f64,
}

/// Summary histogram of [`observe`]d values for one metric: count, sum,
/// min/max, and HDR log buckets (allocated lazily on the first sample, so
/// an empty `HistData` costs nothing).
#[derive(Debug, Clone, PartialEq)]
pub struct HistData {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub buckets: Vec<u64>,
}

impl Default for HistData {
    fn default() -> Self {
        HistData {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: Vec::new(),
        }
    }
}

impl HistData {
    /// Record one sample: running count/sum/min/max plus an HDR bucket
    /// increment (buckets allocate lazily on the first sample).
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if self.buckets.is_empty() {
            self.buckets = vec![0; HIST_BUCKETS];
        }
        self.buckets[hdr::index_of(hdr::value_to_u64(value))] += 1;
    }

    /// Fold `other` into `self`: bucket-wise addition, so quantiles of the
    /// merge equal quantiles of recording the union into one histogram.
    pub fn merge(&mut self, other: &HistData) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if other.buckets.is_empty() {
            return;
        }
        if self.buckets.is_empty() {
            self.buckets = other.buckets.clone();
            return;
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean observed value (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        self.sum / self.count as f64
    }

    /// Nearest-rank quantile estimate from the HDR buckets (`NaN` when
    /// empty); error bounded by one bucket width at that magnitude.
    pub fn quantile(&self, q: f64) -> f64 {
        hdr::quantile_from_buckets(&self.buckets, self.count, q)
    }

    /// Tail quantiles in one call: `(p50, p90, p95, p99)`.
    pub fn percentiles(&self) -> (f64, f64, f64, f64) {
        (
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }
}

#[derive(Default)]
struct Recorder {
    counters: Vec<u64>,
    hists: Vec<HistData>,
    events: Vec<Event>,
}

thread_local! {
    static RECORDER: RefCell<Recorder> = RefCell::new(Recorder::default());
}

fn with_recorder<R>(f: impl FnOnce(&mut Recorder) -> R) -> R {
    RECORDER.with(|cell| f(&mut cell.borrow_mut()))
}

/// A drained (or merged) snapshot of one thread's gated-plane records.
/// Counters and histograms are sorted by metric id; events are in
/// recording order.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ObsReport {
    counters: Vec<(MetricId, u64)>,
    hists: Vec<(MetricId, HistData)>,
    events: Vec<Event>,
}

impl ObsReport {
    /// Non-zero counters, sorted by metric id.
    pub fn counters(&self) -> &[(MetricId, u64)] {
        &self.counters
    }

    /// Non-empty histograms, sorted by metric id.
    pub fn hists(&self) -> &[(MetricId, HistData)] {
        &self.hists
    }

    /// Buffered events in recording order (empty unless the run was in
    /// [`ObsMode::Trace`]).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The value of one counter (0 if absent).
    pub fn counter(&self, id: MetricId) -> u64 {
        self.counters
            .binary_search_by_key(&id, |&(i, _)| i)
            .map(|k| self.counters[k].1)
            .unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty() && self.events.is_empty()
    }

    /// Stamp `rep` onto every event still tagged [`NO_REP`]. Called by the
    /// repetition harness right after draining a worker, so nested merges
    /// never re-tag.
    pub fn retag_rep(&mut self, rep: i32) {
        for e in &mut self.events {
            if e.rep == NO_REP {
                e.rep = rep;
            }
        }
    }

    /// Drop every wall-clock histogram (metric name ending in `_ns`).
    /// Trace files must be byte-identical across reruns and `--jobs`
    /// settings, and timing samples are the one nondeterministic thing the
    /// recorder holds — exporters call this before rendering; the timings
    /// remain available to in-process consumers (bench baselines, digests).
    pub fn strip_timings(&mut self) {
        self.hists
            .retain(|(id, _)| !crate::registry::metric_name(*id).ends_with("_ns"));
    }

    /// Fold `other` into `self`: counters add, histograms merge, events
    /// append (caller controls merge order, and therefore determinism).
    pub fn merge(&mut self, other: ObsReport) {
        for (id, n) in other.counters {
            match self.counters.binary_search_by_key(&id, |&(i, _)| i) {
                Ok(k) => self.counters[k].1 += n,
                Err(k) => self.counters.insert(k, (id, n)),
            }
        }
        for (id, h) in other.hists {
            match self.hists.binary_search_by_key(&id, |&(i, _)| i) {
                Ok(k) => self.hists[k].1.merge(&h),
                Err(k) => self.hists.insert(k, (id, h)),
            }
        }
        self.events.extend(other.events);
    }
}

/// Add `n` to a counter. One load-and-branch when the mode is off.
#[inline]
pub fn counter_add(id: MetricId, n: u64) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        if r.counters.len() <= id.index() {
            r.counters.resize(id.index() + 1, 0);
        }
        r.counters[id.index()] += n;
    });
}

/// Record one histogram sample. One load-and-branch when the mode is off.
#[inline]
pub fn observe(id: MetricId, value: f64) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        if r.hists.len() <= id.index() {
            r.hists.resize_with(id.index() + 1, HistData::default);
        }
        r.hists[id.index()].record(value);
    });
}

/// Record one structured event. Always lands in the flight-recorder ring
/// when the mode is on; additionally buffered for export in
/// [`ObsMode::Trace`]. Use [`NO_NODE`] when there is no node subject.
#[inline]
pub fn event(id: MetricId, round: u64, node: u32, value: f64) {
    let m = mode();
    if m == ObsMode::Off {
        return;
    }
    let e = Event {
        metric: id,
        rep: NO_REP,
        round,
        node,
        value,
    };
    ring::push_global(e);
    if m == ObsMode::Trace {
        with_recorder(|r| r.events.push(e));
    }
}

/// A timing guard from [`span`]: records the elapsed nanoseconds as an
/// [`observe`] sample on drop. Inert (no clock read) when the mode is off
/// at creation.
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub struct Span {
    id: MetricId,
    start: Option<Instant>,
}

/// Start a timed span for `id`.
#[inline]
pub fn span(id: MetricId) -> Span {
    Span {
        id,
        start: enabled().then(Instant::now),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            observe(self.id, start.elapsed().as_nanos() as f64);
        }
    }
}

/// Take the calling thread's records, leaving the buffers empty (capacity
/// retained). The deterministic hand-off point between a worker and its
/// coordinator.
pub fn drain() -> ObsReport {
    with_recorder(|r| {
        let counters = r
            .counters
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != 0)
            .map(|(i, &v)| (MetricId::from_index(i), v))
            .collect();
        let hists = r
            .hists
            .iter()
            .enumerate()
            .filter(|(_, h)| !h.is_empty())
            .map(|(i, h)| (MetricId::from_index(i), h.clone()))
            .collect();
        r.counters.clear();
        r.hists.clear();
        let events = std::mem::take(&mut r.events);
        ObsReport {
            counters,
            hists,
            events,
        }
    })
}

/// Discard the calling thread's records (a [`drain`] whose report is
/// dropped). Call before a scoped run so earlier leftovers cannot leak in.
pub fn reset() {
    let _ = drain();
}

/// Fold a drained report into the calling thread's recorder, preserving
/// event order. Coordinators call this once per worker report, in a
/// deterministic order.
pub fn absorb(report: ObsReport) {
    with_recorder(|r| {
        for (id, n) in report.counters {
            if r.counters.len() <= id.index() {
                r.counters.resize(id.index() + 1, 0);
            }
            r.counters[id.index()] += n;
        }
        for (id, h) in report.hists {
            if r.hists.len() <= id.index() {
                r.hists.resize_with(id.index() + 1, HistData::default);
            }
            r.hists[id.index()].merge(&h);
        }
        r.events.extend(report.events);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{metric, set_mode};

    // Mode is process-global: every test here restores Off before
    // returning, and each works on its own drained report so parallel
    // libtest threads (each with their own thread-local recorder) cannot
    // interfere.

    #[test]
    fn disabled_plane_records_nothing() {
        let id = metric("test.record.off");
        reset();
        counter_add(id, 5);
        observe(id, 1.0);
        event(id, 1, 2, 3.0);
        let _ = span(id);
        assert!(drain().is_empty());
    }

    #[test]
    fn counters_hists_events_round_trip_through_drain() {
        let a = metric("test.record.a");
        let b = metric("test.record.b");
        set_mode(ObsMode::Trace);
        reset();
        counter_add(a, 2);
        counter_add(a, 3);
        observe(b, 10.0);
        observe(b, 2.0);
        event(b, 7, 42, 1.5);
        {
            let _s = span(a);
        }
        set_mode(ObsMode::Off);
        let r = drain();
        assert_eq!(r.counter(a), 5);
        // `a` holds the span sample, `b` the two observes; interning order
        // is global, so look each up explicitly.
        assert_eq!(r.hists().len(), 2);
        let hb = &r.hists().iter().find(|(i, _)| *i == b).expect("hist b").1;
        assert_eq!(hb.count, 2);
        assert_eq!(hb.sum, 12.0);
        assert_eq!(hb.min, 2.0);
        assert_eq!(hb.max, 10.0);
        assert!((hb.mean() - 6.0).abs() < 1e-12);
        let ha = &r.hists().iter().find(|(i, _)| *i == a).expect("hist a").1;
        assert_eq!(ha.count, 1);
        assert!(ha.min >= 0.0);
        assert_eq!(
            r.events(),
            &[Event {
                metric: b,
                rep: NO_REP,
                round: 7,
                node: 42,
                value: 1.5
            }]
        );
        // Second drain is empty: the buffers were taken.
        assert!(drain().is_empty());
    }

    #[test]
    fn merge_adds_and_retag_stamps_only_untagged() {
        let a = metric("test.record.merge");
        set_mode(ObsMode::Trace);
        reset();
        counter_add(a, 1);
        event(a, 1, NO_NODE, 0.0);
        let mut first = drain();
        first.retag_rep(0);
        counter_add(a, 10);
        event(a, 2, NO_NODE, 0.0);
        let mut second = drain();
        set_mode(ObsMode::Off);
        second.retag_rep(1);
        first.merge(second);
        assert_eq!(first.counter(a), 11);
        let reps: Vec<i32> = first.events().iter().map(|e| e.rep).collect();
        assert_eq!(reps, vec![0, 1]);
        first.retag_rep(9); // no NO_REP events left: a no-op
        let reps: Vec<i32> = first.events().iter().map(|e| e.rep).collect();
        assert_eq!(reps, vec![0, 1]);
    }

    #[test]
    fn absorb_then_drain_equals_original() {
        let a = metric("test.record.absorb");
        set_mode(ObsMode::Metrics);
        reset();
        counter_add(a, 4);
        observe(a, 8.0);
        let r = drain();
        absorb(r.clone());
        let again = drain();
        set_mode(ObsMode::Off);
        assert_eq!(r, again);
    }

    #[test]
    fn hist_quantiles_track_samples() {
        let mut h = HistData::default();
        assert!(h.buckets.is_empty());
        for v in [10.0, 30.0, 200.0] {
            h.record(v);
        }
        assert_eq!(h.buckets.len(), HIST_BUCKETS);
        // Median sample is 30; HDR resolution there is one bucket width.
        assert!((h.quantile(0.5) - 30.0).abs() <= hdr::width_of(30) as f64);
        let (p50, _, _, p99) = h.percentiles();
        assert_eq!(p50, h.quantile(0.5));
        assert!((p99 - 200.0).abs() <= hdr::width_of(200) as f64);
    }

    #[test]
    fn merge_handles_lazy_buckets() {
        let mut empty = HistData::default();
        let mut full = HistData::default();
        full.record(5.0);
        // empty ← full clones; full ← empty is a no-op on buckets.
        empty.merge(&full);
        assert_eq!(empty.count, 1);
        assert_eq!(empty.quantile(0.5), 5.5);
        full.merge(&HistData::default());
        assert_eq!(full.count, 1);
        let mut both = HistData::default();
        both.record(5.0);
        both.merge(&full);
        assert_eq!(both.count, 2);
        assert_eq!(both.buckets[hdr::index_of(5)], 2);
    }
}
