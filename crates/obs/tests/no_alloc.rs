//! The disabled-path zero-overhead contract: with the mode at the default
//! `Off`, every gated-plane recording call must be a load-and-branch —
//! no allocation, no thread-local buffer growth, no clock read (the last
//! is not directly observable here, but `Span` holds `None` and so cannot
//! have read one).
//!
//! One `#[test]` only: the allocation counter is process-global, and
//! libtest runs tests on parallel threads, so a second test in this binary
//! would race the window between the two counter reads.

use vcoord_obs::testing::{allocations, min_allocations_over, CountingAllocator};
use vcoord_obs::{counter_add, drain, event, metric, observe, reset, span, ObsMode, NO_NODE};

#[global_allocator]
static COUNTING: CountingAllocator = CountingAllocator;

#[test]
fn disabled_recording_is_allocation_free() {
    assert_eq!(vcoord_obs::mode(), ObsMode::Off);

    // Warm-up: intern the metric ids (the registry allocates once per
    // name) and flush any lazily initialized thread-local state.
    let counter = metric("noalloc.counter");
    let hist = metric("noalloc.hist");
    let ev = metric("noalloc.event");
    reset();

    let disabled_allocs = min_allocations_over(3, || {
        for i in 0..100_000u64 {
            counter_add(counter, 1);
            observe(hist, i as f64);
            event(ev, i, NO_NODE, 0.0);
            let _span = span(hist);
        }
    });
    assert_eq!(
        disabled_allocs, 0,
        "disabled obs recording allocated {disabled_allocs} times over 400k calls"
    );

    // Sanity check the harness can see allocations at all, and that the
    // disabled run really recorded nothing.
    assert!(drain().is_empty());
    let probe = allocations();
    let v: Vec<u64> = (0..64).collect();
    assert!(allocations() > probe, "counting allocator inert?");
    drop(v);
}
