//! End-to-end tests of the `obs-diff` and `obs-report` binaries: exit
//! codes (0 pass / 1 regression / 2 usage / 3 input), trace-dir and
//! BENCH-baseline comparison modes, tolerance specs, and the
//! injected-regression self-test CI relies on (a doubled
//! `evals_per_round` must gate, an unmodified rebuild must pass clean).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn obs_diff(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_obs-diff"))
        .args(args)
        .output()
        .expect("spawn obs-diff binary")
}

fn obs_report(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_obs-report"))
        .args(args)
        .output()
        .expect("spawn obs-report binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn tmp(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("obs-diff-cli")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A minimal valid schema-2 trace (shape mirrors `render_jsonl`).
fn trace(fig: &str, ticks: u64, evals_mean: f64) -> String {
    format!(
        "{{\"type\":\"meta\",\"schema\":2,\"run\":\"t-seed1\",\"fig\":\"{fig}\",\"seed\":1,\"scale\":\"smoke\"}}\n\
         {{\"type\":\"counter\",\"metric\":\"vivaldi.ticks\",\"value\":{ticks}}}\n\
         {{\"type\":\"hist\",\"metric\":\"nps.round_evals\",\"count\":10,\"sum\":{},\"min\":1,\"max\":{evals_mean},\"p50\":{evals_mean},\"p90\":{evals_mean},\"p95\":{evals_mean},\"p99\":{evals_mean}}}\n",
        evals_mean * 10.0,
    )
}

fn write_traces(dir: &Path, figs: &[(&str, u64, f64)]) {
    for (fig, ticks, evals) in figs {
        std::fs::write(dir.join(format!("{fig}.jsonl")), trace(fig, *ticks, *evals)).unwrap();
    }
}

/// Path to the committed repo-root baseline.
fn committed_bench() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_smoke.json")
}

#[test]
fn identical_trace_dirs_pass() {
    let root = tmp("identical");
    let (a, b) = (root.join("a"), root.join("b"));
    std::fs::create_dir_all(&a).unwrap();
    std::fs::create_dir_all(&b).unwrap();
    write_traces(&a, &[("fig1", 100, 200.0), ("fig2", 50, 180.0)]);
    write_traces(&b, &[("fig1", 100, 200.0), ("fig2", 50, 180.0)]);
    let out = obs_diff(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("0 regressions"), "{}", stdout(&out));
}

#[test]
fn moved_counter_gates_and_report_only_does_not() {
    let root = tmp("moved");
    let (a, b) = (root.join("a"), root.join("b"));
    std::fs::create_dir_all(&a).unwrap();
    std::fs::create_dir_all(&b).unwrap();
    write_traces(&a, &[("fig1", 100, 200.0)]);
    write_traces(&b, &[("fig1", 200, 200.0)]); // counter doubled: exact section
    let out = obs_diff(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("REGRESSION"), "{}", stdout(&out));
    let out = obs_diff(&["--report-only", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "--report-only must not gate");
}

#[test]
fn tolerance_spec_absorbs_movement() {
    let root = tmp("tolerated");
    let (a, b) = (root.join("a"), root.join("b"));
    std::fs::create_dir_all(&a).unwrap();
    std::fs::create_dir_all(&b).unwrap();
    write_traces(&a, &[("fig1", 100, 200.0)]);
    write_traces(&b, &[("fig1", 130, 200.0)]);
    let spec = root.join("tol.toml");
    std::fs::write(&spec, "[counters]\ndefault_rel = 0.5\n").unwrap();
    let out = obs_diff(&[
        "--tolerances",
        spec.to_str().unwrap(),
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
}

#[test]
fn missing_trace_file_is_a_regression() {
    let root = tmp("missing");
    let (a, b) = (root.join("a"), root.join("b"));
    std::fs::create_dir_all(&a).unwrap();
    std::fs::create_dir_all(&b).unwrap();
    write_traces(&a, &[("fig1", 100, 200.0), ("fig2", 50, 180.0)]);
    write_traces(&b, &[("fig1", 100, 200.0)]); // fig2 vanished
    let out = obs_diff(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("missing in new"), "{}", stdout(&out));
}

#[test]
fn usage_and_input_errors_have_distinct_codes() {
    assert_eq!(obs_diff(&[]).status.code(), Some(2), "no args is usage");
    assert_eq!(
        obs_diff(&["--frobnicate", "a", "b"]).status.code(),
        Some(2),
        "unknown flag is usage"
    );
    let root = tmp("input-errors");
    let missing = root.join("nope.jsonl");
    assert_eq!(
        obs_diff(&[missing.to_str().unwrap(), missing.to_str().unwrap()])
            .status
            .code(),
        Some(3),
        "unreadable input is exit 3"
    );
    let garbage = root.join("garbage.jsonl");
    std::fs::write(&garbage, "not json at all\n").unwrap();
    assert_eq!(
        obs_diff(&[garbage.to_str().unwrap(), garbage.to_str().unwrap()])
            .status
            .code(),
        Some(3),
        "unparseable input is exit 3"
    );
}

#[test]
fn committed_baseline_self_diff_passes_clean() {
    // The CI gate's clean half: a baseline compared against itself must
    // never regress, whatever the tolerances.
    let bench = committed_bench();
    let bench = bench.to_str().unwrap();
    let out = obs_diff(&[bench, bench]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("0 regressions"), "{}", stdout(&out));
}

#[test]
fn injected_evals_regression_gates() {
    // The CI gate's dirty half (the acceptance self-test): double every
    // evals_per_round mean in a copy of the committed baseline and the
    // diff must exit 1, attributing the regression to that section.
    let text = std::fs::read_to_string(committed_bench()).unwrap();
    let mut lines: Vec<String> = Vec::new();
    let mut in_evals = false;
    let mut doubled = 0;
    for line in text.lines() {
        let mut line = line.to_string();
        if line.contains("\"evals_per_round\"") {
            in_evals = true;
        } else if in_evals && line.trim_start().starts_with('}') {
            in_evals = false;
        } else if in_evals {
            if let Some(pos) = line.find("\"mean\": ") {
                let rest = &line[pos + 8..];
                let end = rest.find(',').unwrap();
                let mean: f64 = rest[..end].trim().parse().unwrap();
                line = format!(
                    "{}\"mean\": {:.3}{}",
                    &line[..pos],
                    mean * 2.0,
                    &rest[end..]
                );
                doubled += 1;
            }
        }
        lines.push(line);
    }
    assert!(
        doubled > 0,
        "baseline has no evals_per_round means to double"
    );
    let root = tmp("injected");
    let hot = root.join("BENCH_doubled.json");
    std::fs::write(&hot, lines.join("\n") + "\n").unwrap();
    let out = obs_diff(&[committed_bench().to_str().unwrap(), hot.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "a 2x evals_per_round regression must gate:\n{}",
        stdout(&out)
    );
    assert!(
        stdout(&out).contains("evals_per_round"),
        "regression must be attributed to evals_per_round:\n{}",
        stdout(&out)
    );
}

#[test]
fn obs_report_summary_and_empty_input_codes() {
    let root = tmp("report");
    let traces = root.join("traces");
    std::fs::create_dir_all(&traces).unwrap();
    write_traces(&traces, &[("fig1", 100, 200.0)]);
    let out = obs_report(&["--summary", traces.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("fig1"), "{}", stdout(&out));
    // Empty directory: the mis-pointed-CI-path error, its own exit code.
    let empty = root.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let out = obs_report(&["--summary", empty.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3));
    // No paths at all is usage, not input.
    assert_eq!(obs_report(&[]).status.code(), Some(2));
}
