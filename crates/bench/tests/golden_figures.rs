//! Golden-figure regression test: regenerate the full smoke-scale figure
//! suite with the committed seed and diff every CSV byte-for-byte against
//! the files committed under `results/`.
//!
//! This is the CI teeth behind every "numerics-preserving" refactor claim:
//! the Simplex kernel, the `EvalPlan` snapshot path, the `--jobs` figure
//! sweep, and the defense slot threaded through both simulators are all
//! allowed to change wall-clock time only — a single flipped output byte
//! fails here. The run uses `--jobs 2` so the parallel sweep path itself
//! is the thing being proven byte-stable.
//!
//! The divergence report is partitioned by provenance: a diff in
//! [`PRE_DEFENSE_IDS`] means the undefended (`NoDefense`-equivalent) code
//! path itself changed numerically — the exact regression the defense
//! subsystem promised never to cause; a diff in the `def-*` suite means
//! the PR-4 defended paths moved (the arms-race layer promised *not* to
//! perturb them: no-decay drift caps are bitwise-identical to the
//! pre-decay implementation); and a diff in [`ARMS_IDS`] is drift in the
//! newest figures only.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Every figure id that existed before the defense subsystem landed. These
/// CSVs must survive any defense-layer change byte-for-byte: with no
/// defense deployed the simulators run the pre-existing code path (scale
/// 1.0 updates, weight 1.0 fits), and these 31 files are the proof.
const PRE_DEFENSE_IDS: [&str; 31] = [
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "fig22",
    "fig23",
    "fig24",
    "fig25",
    "fig26",
    "ext-genesis",
    "ext-faults",
    "atk-sweep-vivaldi",
    "atk-sweep-nps",
    "atk-frog-drift",
];

/// The arms-race figures (PR 5, plus the learning-curve figure that rode
/// along with the chaos layer). Everything in neither this list nor
/// [`PRE_DEFENSE_IDS`] nor [`CHAOS_IDS`] is a PR-4 `def-*` sweep — the
/// middle legacy bucket every later layer must also leave byte-identical.
const ARMS_IDS: [&str; 5] = [
    "arms-sweep-vivaldi",
    "arms-sweep-nps",
    "arms-evasion-roc",
    "arms-decay-tradeoff",
    "arms-evasion-learning",
];

/// The fault-injection figures: each runs a fault model (churn, loss
/// bursts, partitions, landmark takedown) against an attacked, defended
/// system. Everything outside this family runs with **no `ChaosPlan`
/// installed**, so a diff anywhere else means the chaos seam leaked into
/// fault-free numerics — the exact regression `tests/chaos_properties.rs`
/// exists to prevent.
const CHAOS_IDS: [&str; 9] = [
    "chaos-churn-vivaldi",
    "chaos-churn-nps",
    "chaos-landmark-takedown",
    "chaos-loss-bursts",
    "chaos-frog-hides-in-churn",
    "chaos-partition-recovery",
    "chaos-probation-nps",
    "chaos-probation-leak",
    "chaos-detectors-under-faults",
];

/// The committed reference CSVs: `<workspace root>/results`.
fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

#[test]
fn smoke_suite_reproduces_committed_csvs_byte_for_byte() {
    let out = Path::new(env!("CARGO_TARGET_TMPDIR")).join("golden-figures");
    let _ = std::fs::remove_dir_all(&out);
    std::fs::create_dir_all(&out).unwrap();

    // The committed results were produced by `figures all --smoke --seed
    // 2006`; EXPERIMENTS.md records that provenance.
    let run = Command::new(env!("CARGO_BIN_EXE_figures"))
        .args(["all", "--smoke", "--seed", "2006", "--jobs", "2"])
        .arg("--out")
        .arg(&out)
        .output()
        .expect("spawn figures binary");
    assert!(
        run.status.success(),
        "figures all --smoke failed:\n{}",
        String::from_utf8_lossy(&run.stderr)
    );

    let reference = results_dir();
    let csv_names = |dir: &Path| -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(dir)
            .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
            .map(|entry| entry.unwrap().path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("csv"))
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        names.sort();
        names
    };
    // Two-way set equality first: a figure added to the registry without a
    // committed golden CSV (or removed without cleaning results/) must fail
    // here, not silently narrow the comparison.
    let committed = csv_names(&reference);
    let fresh_names = csv_names(&out);
    assert_eq!(
        committed, fresh_names,
        "committed results/ and the freshly generated suite disagree on the \
         figure set; commit the golden CSV for every registry id (figures \
         <ids> --smoke --seed 2006 --out results)"
    );

    for id in PRE_DEFENSE_IDS {
        assert!(
            committed.contains(&format!("{id}.csv")),
            "pre-defense golden CSV missing from results/: {id}.csv"
        );
    }
    for id in ARMS_IDS {
        assert!(
            committed.contains(&format!("{id}.csv")),
            "arms-race golden CSV missing from results/: {id}.csv"
        );
    }
    for id in CHAOS_IDS {
        assert!(
            committed.contains(&format!("{id}.csv")),
            "chaos golden CSV missing from results/: {id}.csv"
        );
    }

    let mut diverged_legacy: Vec<String> = Vec::new();
    let mut diverged_def: Vec<String> = Vec::new();
    let mut diverged_arms: Vec<String> = Vec::new();
    let mut diverged_chaos: Vec<String> = Vec::new();
    for name in &committed {
        let committed_bytes = std::fs::read(reference.join(name)).unwrap();
        let fresh_bytes = std::fs::read(out.join(name)).unwrap();
        if committed_bytes != fresh_bytes {
            let id = name.trim_end_matches(".csv");
            if PRE_DEFENSE_IDS.contains(&id) {
                diverged_legacy.push(name.clone());
            } else if ARMS_IDS.contains(&id) {
                diverged_arms.push(name.clone());
            } else if CHAOS_IDS.contains(&id) {
                diverged_chaos.push(name.clone());
            } else {
                diverged_def.push(name.clone());
            }
        }
    }
    assert!(
        committed.len() >= 49,
        "expected the full 49-figure suite under results/, found {} CSVs",
        committed.len()
    );
    assert!(
        diverged_legacy.is_empty(),
        "PRE-DEFENSE CSV bytes diverged from committed results/ for: \
         {diverged_legacy:?}\n\
         With no defense deployed the simulators must run the pre-existing \
         numerics unchanged (scale 1.0 updates, weight 1.0 fits); this \
         failure means the NoDefense/undefended path itself shifted. Do not \
         re-record — find the flipped bit"
    );
    assert!(
        diverged_def.is_empty(),
        "def-* CSV bytes diverged from committed results/ for: {diverged_def:?}\n\
         The PR-4 defended paths must survive the arms-race layer untouched: \
         a no-decay drift cap is bitwise-identical to the pre-decay \
         implementation, and the feedback/reputation seams are inert for \
         non-adaptive strategies. Do not re-record — find the flipped bit"
    );
    assert!(
        diverged_arms.is_empty(),
        "arms-* CSV bytes diverged from committed results/ for: {diverged_arms:?}\n\
         A numerics-preserving change must not alter any figure output; if \
         the change is *intentionally* numeric, re-record the affected CSVs \
         (figures <ids> --smoke --seed 2006) and explain the delta in \
         EXPERIMENTS.md"
    );
    assert!(
        diverged_chaos.is_empty(),
        "chaos-* CSV bytes diverged from committed results/ for: \
         {diverged_chaos:?}\n\
         The fault schedules draw from the plan's private seeded stream, so \
         these figures are as deterministic as every other; if the change is \
         *intentionally* numeric, re-record the affected CSVs (figures <ids> \
         --smoke --seed 2006) and explain the delta in EXPERIMENTS.md"
    );
}

/// The *enabled*-path half of the observability invariant: with full
/// tracing on (`--trace-out`), every golden CSV still reproduces
/// byte-for-byte — the obs plane reads the simulations but never perturbs
/// them — and every figure emits a schema-valid JSONL trace.
#[test]
fn traced_smoke_suite_matches_committed_csvs_and_emits_valid_traces() {
    let out = Path::new(env!("CARGO_TARGET_TMPDIR")).join("golden-figures-traced");
    let traces = out.join("traces");
    let profile = out.join("profile");
    let _ = std::fs::remove_dir_all(&out);
    std::fs::create_dir_all(&out).unwrap();

    // `--profile` rides along: the wall-clock plane must not move a golden
    // byte even while it is actively attributing phases.
    let run = Command::new(env!("CARGO_BIN_EXE_figures"))
        .args(["all", "--smoke", "--seed", "2006", "--jobs", "2"])
        .arg("--out")
        .arg(&out)
        .arg("--trace-out")
        .arg(&traces)
        .arg("--profile")
        .arg(&profile)
        .output()
        .expect("spawn figures binary");
    assert!(
        run.status.success(),
        "figures all --smoke --trace-out --profile failed:\n{}",
        String::from_utf8_lossy(&run.stderr)
    );

    let reference = results_dir();
    let mut diverged: Vec<String> = Vec::new();
    let mut meta_only: Vec<String> = Vec::new();
    let mut ids = 0usize;
    for entry in std::fs::read_dir(&reference).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("csv") {
            continue;
        }
        ids += 1;
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let committed_bytes = std::fs::read(&path).unwrap();
        let fresh_bytes = std::fs::read(out.join(&name)).unwrap();
        if committed_bytes != fresh_bytes {
            diverged.push(name.clone());
        }

        // Trace sidecar: present, parseable, and stamped with this run's
        // identity.
        let id = name.trim_end_matches(".csv");
        let trace_path = traces.join(format!("{id}.jsonl"));
        let text = std::fs::read_to_string(&trace_path)
            .unwrap_or_else(|e| panic!("missing trace {}: {e}", trace_path.display()));
        let lines = vcoord::obs::parse_jsonl(&text)
            .unwrap_or_else(|e| panic!("{id}.jsonl does not parse: {e}"));
        match &lines[0] {
            vcoord::obs::TraceLine::Meta {
                schema,
                fig,
                seed,
                scale,
                ..
            } => {
                assert_eq!(*schema, vcoord::obs::TRACE_SCHEMA);
                assert_eq!(fig, id);
                assert_eq!(*seed, 2006);
                assert_eq!(scale, "smoke");
            }
            other => panic!("{id}.jsonl first line is not meta: {other:?}"),
        }
        if lines.len() == 1 {
            meta_only.push(id.to_string());
        }

        // Every fault-injection figure must account for its injected
        // faults in the trace: at least one `chaos.*` counter or event.
        // A silent fault (injected but unrecorded) is exactly the class
        // of bug a chaos run exists to surface.
        if id.starts_with("chaos-") {
            let observed_fault = lines.iter().any(|line| match line {
                vcoord::obs::TraceLine::Counter { metric, .. }
                | vcoord::obs::TraceLine::Hist { metric, .. }
                | vcoord::obs::TraceLine::Event { metric, .. } => metric.starts_with("chaos."),
                vcoord::obs::TraceLine::Meta { .. } => false,
            });
            assert!(
                observed_fault,
                "{id}.jsonl records no chaos.* metric — the fault schedule \
                 ran unobserved (or never fired)"
            );
        }
    }
    assert!(ids >= 49, "expected the full 49-figure suite, saw {ids}");

    // The profile sidecar: non-golden (wall-clock) but schema-stable — a
    // meta first line, then exactly one phase-attribution object per
    // figure, every field numeric and the phases no larger than the wall.
    let text = std::fs::read_to_string(profile.join("profile.jsonl")).expect("profile.jsonl");
    let mut profiled = 0usize;
    for (i, line) in text.lines().enumerate() {
        let json = vcoord::obs::diff::parse_json(line)
            .unwrap_or_else(|e| panic!("profile.jsonl line {}: {e}", i + 1));
        let field = |name: &str| {
            json.get(name)
                .and_then(vcoord::obs::diff::Json::as_num)
                .unwrap_or_else(|| panic!("profile.jsonl line {} missing {name}", i + 1))
        };
        if i == 0 {
            assert_eq!(
                json.get("type").and_then(vcoord::obs::diff::Json::as_str),
                Some("meta"),
                "first profile line must be meta"
            );
            assert_eq!(field("seed"), 2006.0);
            continue;
        }
        assert_eq!(
            json.get("type").and_then(vcoord::obs::diff::Json::as_str),
            Some("profile"),
            "profile.jsonl line {}",
            i + 1
        );
        let wall = field("wall_s");
        assert!(wall >= 0.0 && wall.is_finite());
        for phase in [
            "netsim_s",
            "simplex_s",
            "defense_s",
            "eval_plan_s",
            "harness_s",
        ] {
            let v = field(phase);
            assert!(v >= 0.0 && v.is_finite(), "{phase} out of range: {v}");
        }
        profiled += 1;
    }
    assert_eq!(profiled, ids, "one profile row per figure");
    // A few figures are closed-form (no simulation — fig17's geometric
    // evaluation, for example) and legitimately trace nothing; every
    // simulating figure must have recorded at least one counter or event.
    assert!(
        meta_only.len() <= 3,
        "too many meta-only traces — simulating figures ran unobserved: \
         {meta_only:?}"
    );
    assert!(
        diverged.is_empty(),
        "CSV bytes diverged from committed results/ WITH TRACING ON for: \
         {diverged:?}\n\
         The obs plane must be numerics-inert: recording may observe the \
         simulations but never perturb them. Do not re-record — find the \
         flipped bit (a span or counter on a code path that consumes \
         randomness, reorders float ops, or mutates state)"
    );
}
