//! End-to-end tests of the `figures` binary CLI: argument parsing, the
//! figure index, error paths, and CSV output.

use std::path::Path;
use std::process::{Command, Output};

fn figures() -> Command {
    Command::new(env!("CARGO_BIN_EXE_figures"))
}

fn run(args: &[&str]) -> Output {
    figures().args(args).output().expect("spawn figures binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn list_prints_every_figure_id() {
    let out = run(&["--list"]);
    assert!(out.status.success(), "--list must exit 0");
    let text = stdout(&out);
    for id in ["fig1", "fig13", "fig17", "fig26"] {
        assert!(text.contains(id), "--list output missing {id}:\n{text}");
    }
    assert!(
        text.contains("Vivaldi disorder"),
        "--list should include descriptions"
    );
}

#[test]
fn help_exits_nonzero_with_usage() {
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"));
}

#[test]
fn unknown_flag_is_rejected() {
    let out = run(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown flag --frobnicate"));
}

#[test]
fn bad_seed_is_rejected() {
    let out = run(&["--seed", "not-a-number"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("bad seed"));
}

#[test]
fn missing_seed_value_is_rejected() {
    let out = run(&["--seed"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--seed needs a value"));
}

#[test]
fn unknown_figure_id_exits_one() {
    let dir = tempdir("unknown-id");
    let out = run(&["fig99", "--smoke", "--out", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("unknown figure id: fig99"));
}

#[test]
fn smoke_run_writes_csv_with_rows() {
    let dir = tempdir("smoke-fig17");
    // fig17 evaluates closed-form geometry — the cheapest figure.
    let out = run(&[
        "fig17",
        "--smoke",
        "--seed",
        "7",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "figures fig17 --smoke failed:\n{}",
        stderr(&out)
    );
    let csv_path = dir.join("fig17.csv");
    assert!(csv_path.exists(), "expected {}", csv_path.display());
    let csv = std::fs::read_to_string(&csv_path).unwrap();
    let data_rows: Vec<&str> = csv
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .collect();
    assert!(
        data_rows.len() >= 2,
        "CSV needs a header plus at least one data row:\n{csv}"
    );
    // Header then numeric rows.
    assert!(
        data_rows[0].contains(','),
        "header should be comma-separated"
    );
    for cell in data_rows[1].split(',') {
        cell.parse::<f64>()
            .unwrap_or_else(|_| panic!("non-numeric cell {cell:?} in:\n{csv}"));
    }
    // Stdout carries the rendered table and the completion line.
    let text = stdout(&out);
    assert!(text.contains("== fig17"));
    assert!(text.contains("# done: 1 figures"));
}

#[test]
fn attack_sweep_figures_write_csvs_under_smoke() {
    let dir = tempdir("atk-sweeps");
    let out = run(&[
        "atk-sweep-vivaldi",
        "atk-frog-drift",
        "--smoke",
        "--seed",
        "7",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "attack figures --smoke failed:\n{}",
        stderr(&out)
    );
    for id in ["atk-sweep-vivaldi", "atk-frog-drift"] {
        let csv_path = dir.join(format!("{id}.csv"));
        assert!(csv_path.exists(), "expected {}", csv_path.display());
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        let data_rows: Vec<&str> = csv
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .collect();
        assert!(
            data_rows.len() >= 2,
            "{id}: header plus rows needed:\n{csv}"
        );
        for cell in data_rows[1].split(',') {
            cell.parse::<f64>()
                .unwrap_or_else(|_| panic!("{id}: non-numeric cell {cell:?}"));
        }
    }
    // The sweep carries both error and drift columns per strategy.
    let sweep = std::fs::read_to_string(dir.join("atk-sweep-vivaldi.csv")).unwrap();
    assert!(sweep.contains("err_frog_boiling"));
    assert!(sweep.contains("drift_partition"));
}

#[test]
fn attack_sweep_ids_are_listed() {
    let out = run(&["--list"]);
    let text = stdout(&out);
    for id in ["atk-sweep-vivaldi", "atk-sweep-nps", "atk-frog-drift"] {
        assert!(text.contains(id), "--list missing {id}:\n{text}");
    }
}

#[test]
fn defense_sweep_ids_are_listed() {
    let out = run(&["--list"]);
    let text = stdout(&out);
    for id in [
        "def-sweep-vivaldi",
        "def-sweep-nps",
        "def-frog-drift",
        "def-roc",
    ] {
        assert!(text.contains(id), "--list missing {id}:\n{text}");
    }
}

#[test]
fn defense_figures_write_csvs_under_smoke() {
    let dir = tempdir("def-figs");
    let out = run(&[
        "def-frog-drift",
        "def-roc",
        "--smoke",
        "--seed",
        "7",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "defense figures --smoke failed:\n{}",
        stderr(&out)
    );
    for id in ["def-frog-drift", "def-roc"] {
        let csv_path = dir.join(format!("{id}.csv"));
        assert!(csv_path.exists(), "expected {}", csv_path.display());
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        let data_rows: Vec<&str> = csv
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .collect();
        assert!(
            data_rows.len() >= 2,
            "{id}: header plus rows needed:\n{csv}"
        );
        for cell in data_rows[1].split(',') {
            cell.parse::<f64>()
                .unwrap_or_else(|_| panic!("{id}: non-numeric cell {cell:?}"));
        }
    }
    // The drift study carries per-defense drift and error columns; the ROC
    // carries the (fpr, tpr) pairs of both swept detectors.
    let drift = std::fs::read_to_string(dir.join("def-frog-drift.csv")).unwrap();
    assert!(drift.contains("drift_drift_cap"));
    assert!(drift.contains("err_mad_outlier"));
    let roc = std::fs::read_to_string(dir.join("def-roc.csv")).unwrap();
    assert!(roc.contains("tpr_drift_cap"));
    assert!(roc.contains("fpr_mad"));
}

#[test]
fn arms_sweep_ids_are_listed() {
    let out = run(&["--list"]);
    let text = stdout(&out);
    for id in [
        "arms-sweep-vivaldi",
        "arms-sweep-nps",
        "arms-evasion-roc",
        "arms-decay-tradeoff",
        "arms-evasion-learning",
    ] {
        assert!(text.contains(id), "--list missing {id}:\n{text}");
    }
}

#[test]
fn chaos_ids_are_listed() {
    let out = run(&["--list"]);
    let text = stdout(&out);
    for id in [
        "chaos-churn-vivaldi",
        "chaos-churn-nps",
        "chaos-landmark-takedown",
        "chaos-loss-bursts",
        "chaos-frog-hides-in-churn",
        "chaos-partition-recovery",
        "chaos-probation-nps",
    ] {
        assert!(text.contains(id), "--list missing {id}:\n{text}");
    }
}

#[test]
fn chaos_figures_write_csvs_under_smoke() {
    let dir = tempdir("chaos-figs");
    let out = run(&[
        "chaos-loss-bursts",
        "--smoke",
        "--seed",
        "7",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "chaos figures --smoke failed:\n{}",
        stderr(&out)
    );
    let csv_path = dir.join("chaos-loss-bursts.csv");
    assert!(csv_path.exists(), "expected {}", csv_path.display());
    let csv = std::fs::read_to_string(&csv_path).unwrap();
    let data_rows: Vec<&str> = csv
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .collect();
    assert!(
        data_rows.len() >= 2,
        "chaos-loss-bursts: header plus rows needed:\n{csv}"
    );
    for cell in data_rows[1].split(',') {
        cell.parse::<f64>()
            .unwrap_or_else(|_| panic!("chaos-loss-bursts: non-numeric cell {cell:?}"));
    }
    // Every chaos figure carries the recovery accounting plus the injected
    // fault tallies from the sim-side chaos counters.
    assert!(csv.contains("recovery_ratio"));
    assert!(csv.contains("burst_losses"));
}

#[test]
fn arms_figures_write_csvs_under_smoke() {
    let dir = tempdir("arms-figs");
    let out = run(&[
        "arms-evasion-roc",
        "arms-decay-tradeoff",
        "--smoke",
        "--seed",
        "7",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "arms figures --smoke failed:\n{}",
        stderr(&out)
    );
    for id in ["arms-evasion-roc", "arms-decay-tradeoff"] {
        let csv_path = dir.join(format!("{id}.csv"));
        assert!(csv_path.exists(), "expected {}", csv_path.display());
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        let data_rows: Vec<&str> = csv
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .collect();
        assert!(
            data_rows.len() >= 2,
            "{id}: header plus rows needed:\n{csv}"
        );
        for cell in data_rows[1].split(',') {
            cell.parse::<f64>()
                .unwrap_or_else(|_| panic!("{id}: non-numeric cell {cell:?}"));
        }
    }
    // The evasion ROC carries both attackers' detection rates and drifts;
    // the decay trade-off carries the forgiveness accounting.
    let roc = std::fs::read_to_string(dir.join("arms-evasion-roc.csv")).unwrap();
    assert!(roc.contains("tpr_evading"));
    assert!(roc.contains("drift_frog"));
    let decay = std::fs::read_to_string(dir.join("arms-decay-tradeoff.csv")).unwrap();
    assert!(decay.contains("half_life_rounds"));
    assert!(decay.contains("reinstated"));
    assert!(decay.contains("banned_honest_final"));
}

#[test]
fn same_seed_same_csv_bytes() {
    let a = tempdir("repro-a");
    let b = tempdir("repro-b");
    for dir in [&a, &b] {
        let out = run(&[
            "fig17",
            "--smoke",
            "--seed",
            "11",
            "--out",
            dir.to_str().unwrap(),
        ]);
        assert!(out.status.success());
    }
    let csv_a = std::fs::read(a.join("fig17.csv")).unwrap();
    let csv_b = std::fs::read(b.join("fig17.csv")).unwrap();
    assert_eq!(
        csv_a, csv_b,
        "identical seeds must reproduce identical CSVs"
    );
}

/// A unique, test-scoped output directory under the target tmp dir.
#[test]
fn trace_out_is_deterministic_across_jobs_and_digestible() {
    // The observability contract on the figure harness: `--trace-out`
    // emits one schema-valid JSONL per figure whose bytes depend only on
    // (figure, scale, seed) — never on `--jobs` — and the obs-report
    // binary digests it without error.
    let dir1 = tempdir("trace-jobs1");
    let dir2 = tempdir("trace-jobs2");
    for (dir, jobs) in [(&dir1, "1"), (&dir2, "2")] {
        let out = run(&[
            "def-frog-drift",
            "fig1",
            "--smoke",
            "--seed",
            "7",
            "--jobs",
            jobs,
            "--out",
            dir.to_str().unwrap(),
            "--trace-out",
            dir.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "figures --trace-out failed:\n{}",
            stderr(&out)
        );
    }
    for id in ["def-frog-drift", "fig1"] {
        let a = std::fs::read(dir1.join(format!("{id}.jsonl"))).unwrap();
        let b = std::fs::read(dir2.join(format!("{id}.jsonl"))).unwrap();
        assert_eq!(
            a, b,
            "{id}.jsonl differs between --jobs 1 and --jobs 2: traces must \
             be byte-deterministic"
        );
    }
    // The defended figure's trace carries the verdict counters and flag
    // events the EXPERIMENTS.md digest is built from.
    let drift = std::fs::read_to_string(dir1.join("def-frog-drift.jsonl")).unwrap();
    assert!(drift.starts_with("{\"type\":\"meta\""), "meta line first");
    assert!(drift.contains("defense.accept"));
    assert!(drift.contains("\"type\":\"event\""));

    // obs-report digests both traces, in both renderings.
    let trace_path = dir1.join("def-frog-drift.jsonl");
    let report = Command::new(env!("CARGO_BIN_EXE_obs-report"))
        .arg(&trace_path)
        .output()
        .expect("spawn obs-report");
    assert!(
        report.status.success(),
        "obs-report failed:\n{}",
        stderr(&report)
    );
    let text = stdout(&report);
    assert!(text.contains("trace def-frog-drift"), "{text}");
    assert!(text.contains("defense.accept"), "{text}");
    let csv = Command::new(env!("CARGO_BIN_EXE_obs-report"))
        .arg("--csv")
        .arg(&trace_path)
        .output()
        .expect("spawn obs-report --csv");
    assert!(csv.status.success());
    assert!(stdout(&csv).starts_with("kind,metric,round,count,sum,min,max"));

    // A malformed trace is a hard error with the offending line number.
    let bad = dir1.join("corrupt.jsonl");
    std::fs::write(&bad, "{\"type\":\"meta\",\"schema\":1,\"run\":\"r\",\"fig\":\"f\",\"seed\":7,\"scale\":\"smoke\"}\nnot json\n").unwrap();
    let fail = Command::new(env!("CARGO_BIN_EXE_obs-report"))
        .arg(&bad)
        .output()
        .expect("spawn obs-report on corrupt input");
    assert_eq!(fail.status.code(), Some(1));
    assert!(stderr(&fail).contains("line 2"), "{}", stderr(&fail));
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let base = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("figures-cli-{tag}"));
    // Stale contents from a previous run are fine to clobber.
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    base
}
