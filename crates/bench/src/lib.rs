//! # vcoord-bench
//!
//! Benchmark harness for the `vcoord` workspace:
//!
//! * the **`figures` binary** — regenerates the data behind every figure of
//!   the paper's evaluation (`cargo run -p vcoord-bench --release --bin
//!   figures -- all`), printing the series and writing CSVs;
//! * the **`bench-baseline` binary** — wall-clocks the figure suite and the
//!   hot kernels into a machine-readable `BENCH_<label>.json` perf
//!   baseline;
//! * **Criterion benches** (`cargo bench`) — hot-path kernels
//!   (`kernels`), whole-simulator throughput (`simulators`), attack lie
//!   construction (`attacks`), design-choice ablations (`ablations`), and a
//!   smoke pass over representative figure runners (`figures_smoke`).

use vcoord::netsim::SeedStream;
use vcoord::space::{SimplexOptions, Space};

/// Default output directory for figure CSVs.
pub const DEFAULT_OUT_DIR: &str = "results";

/// One benchmark reference point: reported coordinates plus the measured
/// distance it claims.
pub type SimplexRef = (Vec<f64>, f64);

/// The representative NPS positioning fixture shared by the `kernels`
/// bench and the `bench-baseline` binary: 20 reference points drawn in a
/// `dim`-D Euclidean space, each claiming an 80 ms measurement, minimized
/// from the all-ones start with the simulator's iteration budget.
///
/// Keeping one definition is what makes `cargo bench` numbers and the
/// committed `BENCH_*.json` trajectory comparable — tweak it here or
/// nowhere.
pub fn simplex_fixture(dim: usize) -> (Vec<SimplexRef>, SimplexOptions, Vec<f64>) {
    let seeds = SeedStream::new(2);
    let mut rng = seeds.rng("bench/simplex-fixture");
    let space = Space::Euclidean(dim);
    let refs: Vec<SimplexRef> = (0..20)
        .map(|_| (space.random_coord(150.0, &mut rng).vec, 80.0))
        .collect();
    (refs, simplex_bench_opts(), vec![1.0; dim])
}

/// The Simplex option set used by every kernel bench (the NPS simulator's
/// positioning budget).
pub fn simplex_bench_opts() -> SimplexOptions {
    SimplexOptions {
        max_iterations: 150,
        initial_step: 20.0,
        ..SimplexOptions::default()
    }
}

/// Squared-relative latency-fit objective over `refs`, computed on raw
/// slices (no per-evaluation allocation), for use with both the
/// allocation-free Simplex kernel and the retained oracle.
pub fn fit_objective(refs: &[SimplexRef]) -> impl Fn(&[f64]) -> f64 + '_ {
    move |x: &[f64]| {
        refs.iter()
            .map(|(c, d)| {
                let dist = c
                    .iter()
                    .zip(x)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                let e = (dist - d) / d;
                e * e
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_deterministic_and_minimizable() {
        let (refs_a, opts, start) = simplex_fixture(2);
        let (refs_b, _, _) = simplex_fixture(2);
        assert_eq!(refs_a, refs_b, "fixture must be seed-stable");
        assert_eq!(refs_a.len(), 20);
        assert_eq!(start, vec![1.0; 2]);
        let f = fit_objective(&refs_a);
        let r = vcoord::space::simplex_downhill(&f, &start, &opts);
        assert!(
            r.value < f(&start),
            "minimization must improve on the start"
        );
    }
}
