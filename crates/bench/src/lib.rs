//! # vcoord-bench
//!
//! Benchmark harness for the `vcoord` workspace:
//!
//! * the **`figures` binary** — regenerates the data behind every figure of
//!   the paper's evaluation (`cargo run -p vcoord-bench --release --bin
//!   figures -- all`), printing the series and writing CSVs;
//! * **Criterion benches** (`cargo bench`) — hot-path kernels
//!   (`kernels`), whole-simulator throughput (`simulators`), attack lie
//!   construction (`attacks`), design-choice ablations (`ablations`), and a
//!   smoke pass over representative figure runners (`figures_smoke`).

/// Default output directory for figure CSVs.
pub const DEFAULT_OUT_DIR: &str = "results";
