//! Compare two runs — JSONL traces, trace directories, or `BENCH_*.json`
//! baselines — under a declarative tolerance spec, and fail on regression.
//!
//! ```text
//! obs-diff [--tolerances FILE] [--report-only] [--verbose] BASE NEW
//!
//!   BASE, NEW      a trace file (figures --trace-out), a directory of
//!                  *.jsonl traces, or a BENCH_*.json baseline; BASE and
//!                  NEW must be the same kind
//!   --tolerances   TOML tolerance spec (see vcoord-obs::diff docs);
//!                  defaults to exact counters + 10 % everywhere else
//!   --report-only  print the delta table but always exit 0 on regression
//!   --verbose      include in-tolerance rows in the table
//! ```
//!
//! Exit codes: 0 in tolerance (or `--report-only`), 1 regression,
//! 2 usage error, 3 unreadable/unparseable input.

use std::path::Path;
use vcoord::obs::diff::{
    diff_samples, parse_json, samples_from_bench, samples_from_trace, Sample, ToleranceSpec,
};
use vcoord::obs::{parse_jsonl, TraceLine};

const USAGE: &str = "usage: obs-diff [--tolerances FILE] [--report-only] [--verbose] BASE NEW";

fn die_input(msg: &str) -> ! {
    eprintln!("obs-diff: {msg}");
    std::process::exit(3);
}

/// Parse one file as either a JSONL trace (first) or a BENCH baseline.
fn samples_from_file(path: &Path) -> Vec<Sample> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die_input(&format!("{}: {e}", path.display())));
    match parse_jsonl(&text) {
        Ok(lines) => {
            let fig = lines
                .iter()
                .find_map(|l| match l {
                    TraceLine::Meta { fig, .. } => Some(fig.clone()),
                    _ => None,
                })
                .unwrap_or_else(|| {
                    die_input(&format!("{}: trace has no meta line", path.display()))
                });
            samples_from_trace(&fig, &lines)
        }
        Err(trace_err) => match parse_json(&text).and_then(|j| samples_from_bench(&j)) {
            Ok(samples) => samples,
            Err(bench_err) => die_input(&format!(
                "{}: not a trace ({trace_err}) and not a BENCH baseline ({bench_err})",
                path.display()
            )),
        },
    }
}

/// Sorted `*.jsonl` names in a directory.
fn trace_names(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| die_input(&format!("{}: {e}", dir.display())))
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            name.ends_with(".jsonl").then_some(name)
        })
        .collect();
    names.sort();
    names
}

fn main() {
    let mut tolerances: Option<String> = None;
    let mut report_only = false;
    let mut verbose = false;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerances" => match args.next() {
                Some(f) => tolerances = Some(f),
                None => {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            },
            "--report-only" => report_only = true,
            "--verbose" => verbose = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
            other => paths.push(other.to_string()),
        }
    }
    let [base, new] = paths.as_slice() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let base = Path::new(base);
    let new = Path::new(new);

    let spec = match &tolerances {
        None => ToleranceSpec::default(),
        Some(file) => {
            let text = std::fs::read_to_string(file)
                .unwrap_or_else(|e| die_input(&format!("{file}: {e}")));
            ToleranceSpec::parse(&text).unwrap_or_else(|e| die_input(&format!("{file}: {e}")))
        }
    };

    // Directories compare per-name: a base trace missing from the new run
    // is itself a regression (the suite shrank); extra new traces are
    // informational (the suite grew).
    let mut missing_files = 0usize;
    let (base_samples, new_samples) = if base.is_dir() || new.is_dir() {
        if !(base.is_dir() && new.is_dir()) {
            die_input("BASE and NEW must both be directories (or both files)");
        }
        let base_names = trace_names(base);
        let new_names = trace_names(new);
        if base_names.is_empty() {
            die_input(&format!("{}: no *.jsonl traces", base.display()));
        }
        let mut b = Vec::new();
        let mut n = Vec::new();
        for name in &base_names {
            if new_names.contains(name) {
                b.extend(samples_from_file(&base.join(name)));
                n.extend(samples_from_file(&new.join(name)));
            } else {
                println!("missing in new: {name}  REGRESSION");
                missing_files += 1;
            }
        }
        for name in &new_names {
            if !base_names.contains(name) {
                println!("only in new: {name}");
            }
        }
        (b, n)
    } else {
        (samples_from_file(base), samples_from_file(new))
    };

    let report = diff_samples(&base_samples, &new_samples, &spec);
    print!("{}", report.to_text(verbose));
    let regressions = report.regressions() + missing_files;
    if regressions > 0 {
        if report_only {
            println!("report-only: {regressions} regressions ignored");
        } else {
            std::process::exit(1);
        }
    }
}
