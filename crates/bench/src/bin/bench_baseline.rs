//! Persistent perf baseline: `BENCH_<label>.json`.
//!
//! ```text
//! bench-baseline [IDS...] [--smoke|--quick] [--label L] [--seed N] [--out DIR]
//!
//!   IDS        figure ids to wall-clock (default: all)
//!   --smoke    72-node scale (default; the committed baseline)
//!   --quick    400-node scale (slower, closer to real workloads)
//!   --label L  baseline label; output file is BENCH_<label>.json
//!              (default: the scale name)
//!   --seed N   master seed (default 2006)
//!   --out DIR  output directory (default .)
//! ```
//!
//! Emits one machine-readable JSON file (schema 4) holding (a) per-figure
//! wall-clock seconds at the chosen scale — figures are timed one at a time
//! (no `--jobs` overlap), though each figure still uses its internal
//! repetition/eval pools, so pin `VCOORD_THREADS` (recorded in the JSON as
//! `"threads"`) when comparing numbers across machines — (b) per-figure
//! `evals_per_round` (mean/median/p99 Simplex objective evaluations per
//! NPS positioning round, from snapshot deltas of the `vcoord::nps::evals`
//! histogram; Vivaldi-only figures record no entry), plus a per-figure
//! `"obs"` block: the figure sweep runs with the `vcoord-obs`
//! gated plane in `Metrics` mode and each figure's drained counters and
//! histogram summaries (count, mean, and — schema 4, from the HDR bucket
//! upgrade — p50/p90/p95/p99; wall-clock ones included — this file
//! is a perf record, not a byte-compared trace) land beside its wall-clock
//! — (c) the
//! strict-vs-warm **eval-collapse fixture** — one steady-state NPS run per
//! positioning mode, same seed, reporting mean evals/round and the ratio
//! the ≥2× warm-start claim is judged on — and (d) hot-kernel timings: the
//! allocation-free Simplex kernel next to its retained allocating oracle
//! (`vcoord_space::simplex::oracle`), the batched SoA distance kernel next
//! to its scalar reference, and the snapshot-based `EvalPlan::avg_error`,
//! timed in-process on the shared `vcoord_bench` fixtures (deliberately
//! not scraping `cargo bench`, so the baseline needs no cargo at runtime).
//! Kernel entries carry mean/median/trimmed-mean/p95/min/max: compare the
//! robust columns (`trimmed_mean_s`, `p95_s`, `median_s`) across runs —
//! the raw mean is kept for schema continuity but one preempted sample
//! can invert it between paired kernels (see vendor/README.md).
//! Committing a `BENCH_smoke.json` per perf-relevant PR gives the repo a
//! perf trajectory that review can diff instead of trusting prose; CI
//! regenerates and prints it on every run.

use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use vcoord::experiments::{registry, Scale};
use vcoord::metrics::EvalPlan;
use vcoord::netsim::SeedStream;
use vcoord::nps::{evals, NpsConfig, NpsSim, PositioningMode};
use vcoord::space::simplex::oracle::simplex_downhill_reference;
use vcoord::space::{
    dist_batch, dist_batch_scalar, simplex_downhill_scratch, Coord, ResumePolicy, SimplexScratch,
    Space,
};
use vcoord::topo::{KingLike, KingLikeConfig};

struct Args {
    ids: Vec<String>,
    scale: Scale,
    scale_name: &'static str,
    label: Option<String>,
    seed: u64,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut ids = Vec::new();
    let mut scale = Scale::smoke();
    let mut scale_name = "smoke";
    let mut label = None;
    let mut seed = 2006u64;
    let mut out = PathBuf::from(".");
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => {
                scale = Scale::smoke();
                scale_name = "smoke";
            }
            "--quick" => {
                scale = Scale::quick();
                scale_name = "quick";
            }
            "--label" => label = Some(argv.next().ok_or("--label needs a value")?),
            "--seed" => {
                seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--out" => out = PathBuf::from(argv.next().ok_or("--out needs a value")?),
            "--help" | "-h" => {
                return Err(
                    "usage: bench-baseline [IDS...|all] [--smoke|--quick] [--label L] [--seed N] [--out DIR]"
                        .into(),
                );
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => ids.push(other.to_string()),
        }
    }
    Ok(Args {
        ids,
        scale,
        scale_name,
        label,
        seed,
        out,
    })
}

/// Summary of repeated single-call timings of one kernel.
struct KernelStats {
    mean_s: f64,
    median_s: f64,
    /// 20 % symmetrically trimmed mean — the robust headline number (one
    /// preempted sample can invert the raw means of paired kernels).
    trimmed_mean_s: f64,
    /// 95th-percentile (nearest-rank) single-call time.
    p95_s: f64,
    min_s: f64,
    max_s: f64,
    samples: usize,
}

/// Time `f` repeatedly (one timing per call) until the budget is spent.
fn time_kernel<F: FnMut()>(budget: Duration, mut f: F) -> KernelStats {
    f(); // warm-up (page in code and scratch buffers)
    let mut samples: Vec<f64> = Vec::new();
    let started = Instant::now();
    while started.elapsed() < budget && samples.len() < 4096 {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = samples.len();
    let cut = n / 10; // 10 % per tail, like the criterion stub
    let kept = &samples[cut..n - cut];
    KernelStats {
        mean_s: samples.iter().sum::<f64>() / n as f64,
        median_s: samples[n / 2],
        trimmed_mean_s: kept.iter().sum::<f64>() / kept.len() as f64,
        p95_s: samples[((n as f64 - 1.0) * 0.95).round() as usize],
        min_s: samples[0],
        max_s: samples[n - 1],
        samples: n,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    vcoord::netsim::simlog::init();
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let label = args
        .label
        .clone()
        .unwrap_or_else(|| args.scale_name.to_string());

    // --- Kernel timings -------------------------------------------------
    let budget = Duration::from_millis(400);
    let mut kernels: Vec<(String, KernelStats)> = Vec::new();
    for dim in [2usize, 8] {
        // The shared representative NPS positioning fixture (20 references;
        // see vcoord_bench::simplex_fixture — also used by the kernels
        // bench, so `cargo bench` and this baseline stay comparable).
        let (refs, opts, start) = vcoord_bench::simplex_fixture(dim);
        let mut scratch = SimplexScratch::new();
        let objective = vcoord_bench::fit_objective(&refs);
        kernels.push((
            format!("simplex_{dim}d_20refs"),
            time_kernel(budget, || {
                std::hint::black_box(simplex_downhill_scratch(
                    &objective,
                    &start,
                    &opts,
                    &mut scratch,
                ));
            }),
        ));
        kernels.push((
            format!("simplex_oracle_{dim}d_20refs"),
            time_kernel(budget, || {
                std::hint::black_box(simplex_downhill_reference(&objective, &start, &opts));
            }),
        ));
    }
    {
        // A trivial objective isolates pure kernel overhead (sorting,
        // centroid, trial-point management, allocation) — the number the
        // ≥2×-over-oracle target is judged on; the 20-ref fixtures above
        // measure the realistic NPS mix where objective evaluation bounds
        // the achievable speedup.
        let dim = 8;
        let objective = |x: &[f64]| -> f64 { x.iter().map(|v| (v - 3.0) * (v - 3.0)).sum::<f64>() };
        let opts = vcoord_bench::simplex_bench_opts();
        let start = vec![1.0; dim];
        let mut scratch = SimplexScratch::new();
        kernels.push((
            "simplex_8d_quadratic".into(),
            time_kernel(budget, || {
                std::hint::black_box(simplex_downhill_scratch(
                    objective,
                    &start,
                    &opts,
                    &mut scratch,
                ));
            }),
        ));
        kernels.push((
            "simplex_oracle_8d_quadratic".into(),
            time_kernel(budget, || {
                std::hint::black_box(simplex_downhill_reference(objective, &start, &opts));
            }),
        ));
    }
    {
        // The batched SoA distance kernel against its scalar reference, at
        // the EvalPlan working-set shape (96 sampled peers per node). Both
        // are bit-identical by contract; the pair reads as the SIMD lane
        // speedup.
        let dim = 8;
        let pairs = 96;
        let seeds = SeedStream::new(5);
        let mut rng = seeds.rng("bench/lanes");
        let space = Space::Euclidean(dim);
        let a = space.random_coord(150.0, &mut rng).vec;
        let rows: Vec<f64> = (0..pairs)
            .flat_map(|_| space.random_coord(150.0, &mut rng).vec)
            .collect();
        let mut out = vec![0.0; pairs];
        // One call is too short to time; 64 calls per sample keeps the
        // timer quantization honest on both paths.
        kernels.push((
            format!("dist_batch_{dim}d_{pairs}pairs_x64"),
            time_kernel(budget, || {
                for _ in 0..64 {
                    dist_batch(std::hint::black_box(&a), &rows, &mut out);
                }
                std::hint::black_box(&mut out);
            }),
        ));
        kernels.push((
            format!("dist_batch_scalar_{dim}d_{pairs}pairs_x64"),
            time_kernel(budget, || {
                for _ in 0..64 {
                    dist_batch_scalar(std::hint::black_box(&a), &rows, &mut out);
                }
                std::hint::black_box(&mut out);
            }),
        ));
    }
    {
        let seeds = SeedStream::new(3);
        let matrix =
            KingLike::new(KingLikeConfig::with_nodes(400)).generate(&mut seeds.rng("topo"));
        let space = Space::Euclidean(2);
        let mut rng = seeds.rng("plan");
        let nodes: Vec<usize> = (0..400).collect();
        let plan = EvalPlan::with_params(&nodes, 128, 96, &mut rng);
        let coords: Vec<Coord> = (0..400)
            .map(|_| space.random_coord(150.0, &mut rng))
            .collect();
        kernels.push((
            "eval_plan_avg_error_400n_96peers".into(),
            time_kernel(budget, || {
                std::hint::black_box(plan.avg_error(&coords, &space, &matrix));
            }),
        ));
    }
    for (name, s) in &kernels {
        println!(
            "{name:<40} {:>9.3e} s median ({} samples, trimmed {:.3e}, p95 {:.3e})",
            s.median_s, s.samples, s.trimmed_mean_s, s.p95_s
        );
    }

    // --- Eval-collapse fixture ------------------------------------------
    // One steady-state NPS run per positioning mode, same seed and probe
    // stream, measured after the join transient: the evals/round ratio is
    // the evidence for the warm-start evaluation-count collapse. Runs
    // before the figure sweep so its rounds never pollute the per-figure
    // histogram deltas below.
    let collapse_nodes = match args.scale_name {
        "quick" => 200,
        _ => 80,
    };
    let collapse = |mode: PositioningMode| -> f64 {
        let seeds = SeedStream::new(args.seed);
        let matrix = KingLike::new(KingLikeConfig::with_nodes(collapse_nodes))
            .generate(&mut seeds.rng("topo"));
        let config = NpsConfig {
            landmarks: 12,
            refs_per_node: 12,
            space: Space::Euclidean(4),
            positioning: mode,
            ..NpsConfig::default()
        };
        let mut sim = NpsSim::new(matrix, config, &seeds);
        sim.run_ms(1_200_000); // join transient
        let warmed = sim.counters();
        sim.run_ms(1_200_000);
        let c = sim.counters();
        (c.objective_evals - warmed.objective_evals) as f64
            / (c.positionings - warmed.positionings).max(1) as f64
    };
    let collapse_strict = collapse(PositioningMode::Strict);
    let collapse_warm = collapse(PositioningMode::Warm(ResumePolicy::default_warm()));
    let collapse_ratio = collapse_strict / collapse_warm;
    println!(
        "nps_eval_collapse ({collapse_nodes} nodes)       strict {collapse_strict:.1} warm {collapse_warm:.1} evals/round ({collapse_ratio:.2}x)"
    );

    // --- Figure wall-clocks ---------------------------------------------
    let ids: Vec<String> = if args.ids.is_empty() || args.ids.iter().any(|i| i == "all") {
        registry::figure_ids()
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        args.ids.clone()
    };
    let mut figures: Vec<(String, f64)> = Vec::new();
    // Per-figure NPS positioning cost: (id, mean, median, rounds). Figures
    // that never reposition an NPS node (the Vivaldi family) record no
    // entry. The figures run one at a time, so each snapshot delta of the
    // process-global histogram is attributable to exactly one figure.
    let mut figure_evals: Vec<(String, f64, f64, f64, u64)> = Vec::new();
    // Per-figure gated-plane summaries for the schema-3 "obs" block. The
    // sweep (and only the sweep) runs in Metrics mode: kernel timings above
    // stay on the disabled path, comparable with pre-obs baselines.
    let mut figure_obs: Vec<(String, vcoord::obs::ObsReport)> = Vec::new();
    vcoord::obs::set_mode(vcoord::obs::ObsMode::Metrics);
    let sweep_start = Instant::now();
    for id in &ids {
        let start = Instant::now();
        let evals_before = evals::snapshot();
        vcoord::obs::reset();
        match registry::run_figure(id, &args.scale, args.seed) {
            Some(_) => {
                let secs = start.elapsed().as_secs_f64();
                figure_obs.push((id.clone(), vcoord::obs::drain()));
                let d = evals::snapshot().delta_since(&evals_before);
                if d.rounds() > 0 {
                    println!(
                        "{id:<20} {secs:>8.2}s  {:>7.1} evals/round over {} rounds",
                        d.mean(),
                        d.rounds()
                    );
                    figure_evals.push((
                        id.clone(),
                        d.mean(),
                        d.median(),
                        d.quantile(0.99),
                        d.rounds(),
                    ));
                } else {
                    println!("{id:<20} {secs:>8.2}s");
                }
                figures.push((id.clone(), secs));
            }
            None => {
                eprintln!("unknown figure id: {id} (try --list on the figures binary)");
                std::process::exit(1);
            }
        }
    }
    let figures_total = sweep_start.elapsed().as_secs_f64();
    vcoord::obs::set_mode(vcoord::obs::ObsMode::Off);

    // --- JSON -----------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"label\": \"{}\",\n", json_escape(&label)));
    json.push_str("  \"schema\": 4,\n");
    json.push_str(&format!("  \"scale\": \"{}\",\n", args.scale_name));
    json.push_str(&format!("  \"seed\": {},\n", args.seed));
    json.push_str(&format!(
        "  \"threads\": {},\n",
        vcoord::metrics::worker_threads()
    ));
    json.push_str("  \"kernels\": {\n");
    for (i, (name, s)) in kernels.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"mean_s\": {:e}, \"median_s\": {:e}, \"trimmed_mean_s\": {:e}, \"p95_s\": {:e}, \"min_s\": {:e}, \"max_s\": {:e}, \"samples\": {}}}{}\n",
            json_escape(name),
            s.mean_s,
            s.median_s,
            s.trimmed_mean_s,
            s.p95_s,
            s.min_s,
            s.max_s,
            s.samples,
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"nps_eval_collapse\": {{\"nodes\": {collapse_nodes}, \"strict_mean\": {collapse_strict:.3}, \"warm_mean\": {collapse_warm:.3}, \"ratio\": {collapse_ratio:.3}}},\n"
    ));
    json.push_str("  \"evals_per_round\": {\n");
    for (i, (id, mean, median, p99, rounds)) in figure_evals.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"mean\": {mean:.3}, \"median\": {median:.1}, \"p99\": {p99:.1}, \"rounds\": {rounds}}}{}\n",
            json_escape(id),
            if i + 1 < figure_evals.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"obs\": {\n");
    for (i, (id, report)) in figure_obs.iter().enumerate() {
        json.push_str(&format!("    \"{}\": {{", json_escape(id)));
        json.push_str("\"counters\": {");
        for (k, &(metric, value)) in report.counters().iter().enumerate() {
            json.push_str(&format!(
                "{}\"{}\": {value}",
                if k > 0 { ", " } else { "" },
                json_escape(vcoord::obs::metric_name(metric)),
            ));
        }
        json.push_str("}, \"hists\": {");
        for (k, (metric, h)) in report.hists().iter().enumerate() {
            let (p50, p90, p95, p99) = h.percentiles();
            json.push_str(&format!(
                "{}\"{}\": {{\"count\": {}, \"mean\": {:e}, \"p50\": {p50:e}, \"p90\": {p90:e}, \"p95\": {p95:e}, \"p99\": {p99:e}}}",
                if k > 0 { ", " } else { "" },
                json_escape(vcoord::obs::metric_name(*metric)),
                h.count,
                h.mean(),
            ));
        }
        json.push_str(&format!(
            "}}}}{}\n",
            if i + 1 < figure_obs.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"figures\": {\n");
    for (i, (id, secs)) in figures.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {:.3}{}\n",
            json_escape(id),
            secs,
            if i + 1 < figures.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!("  \"figures_total_s\": {figures_total:.3}\n"));
    json.push_str("}\n");

    std::fs::create_dir_all(&args.out).expect("create output directory");
    let path = args.out.join(format!("BENCH_{label}.json"));
    let mut file = std::fs::File::create(&path).expect("create baseline file");
    file.write_all(json.as_bytes()).expect("write baseline");
    println!(
        "# wrote {} ({} kernels, {} figures, {:.1}s total figure time)",
        path.display(),
        kernels.len(),
        figures.len(),
        figures_total
    );
}
