//! Persistent perf baseline: `BENCH_<label>.json`.
//!
//! ```text
//! bench-baseline [IDS...] [--smoke|--quick] [--label L] [--seed N] [--out DIR]
//!
//!   IDS        figure ids to wall-clock (default: all)
//!   --smoke    72-node scale (default; the committed baseline)
//!   --quick    400-node scale (slower, closer to real workloads)
//!   --label L  baseline label; output file is BENCH_<label>.json
//!              (default: the scale name)
//!   --seed N   master seed (default 2006)
//!   --out DIR  output directory (default .)
//! ```
//!
//! Emits one machine-readable JSON file holding (a) per-figure wall-clock
//! seconds at the chosen scale — figures are timed one at a time (no
//! `--jobs` overlap), though each figure still uses its internal
//! repetition/eval pools, so pin `VCOORD_THREADS` (recorded in the JSON as
//! `"threads"`) when comparing numbers across machines — and (b)
//! hot-kernel timings: the allocation-free Simplex kernel next to its
//! retained allocating oracle (`vcoord_space::simplex::oracle`) and the
//! snapshot-based `EvalPlan::avg_error`, timed in-process on the shared
//! `vcoord_bench` fixtures (deliberately not scraping `cargo bench`, so
//! the baseline needs no cargo at runtime). Committing a
//! `BENCH_smoke.json` per perf-relevant PR gives the repo a perf
//! trajectory that review can diff instead of trusting prose; CI
//! regenerates and prints it on every run.

use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use vcoord::experiments::{registry, Scale};
use vcoord::metrics::EvalPlan;
use vcoord::netsim::SeedStream;
use vcoord::space::simplex::oracle::simplex_downhill_reference;
use vcoord::space::{simplex_downhill_scratch, Coord, SimplexScratch, Space};
use vcoord::topo::{KingLike, KingLikeConfig};

struct Args {
    ids: Vec<String>,
    scale: Scale,
    scale_name: &'static str,
    label: Option<String>,
    seed: u64,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut ids = Vec::new();
    let mut scale = Scale::smoke();
    let mut scale_name = "smoke";
    let mut label = None;
    let mut seed = 2006u64;
    let mut out = PathBuf::from(".");
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => {
                scale = Scale::smoke();
                scale_name = "smoke";
            }
            "--quick" => {
                scale = Scale::quick();
                scale_name = "quick";
            }
            "--label" => label = Some(argv.next().ok_or("--label needs a value")?),
            "--seed" => {
                seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--out" => out = PathBuf::from(argv.next().ok_or("--out needs a value")?),
            "--help" | "-h" => {
                return Err(
                    "usage: bench-baseline [IDS...|all] [--smoke|--quick] [--label L] [--seed N] [--out DIR]"
                        .into(),
                );
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => ids.push(other.to_string()),
        }
    }
    Ok(Args {
        ids,
        scale,
        scale_name,
        label,
        seed,
        out,
    })
}

/// Summary of repeated single-call timings of one kernel.
struct KernelStats {
    mean_s: f64,
    median_s: f64,
    min_s: f64,
    max_s: f64,
    samples: usize,
}

/// Time `f` repeatedly (one timing per call) until the budget is spent.
fn time_kernel<F: FnMut()>(budget: Duration, mut f: F) -> KernelStats {
    f(); // warm-up (page in code and scratch buffers)
    let mut samples: Vec<f64> = Vec::new();
    let started = Instant::now();
    while started.elapsed() < budget && samples.len() < 4096 {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = samples.len();
    KernelStats {
        mean_s: samples.iter().sum::<f64>() / n as f64,
        median_s: samples[n / 2],
        min_s: samples[0],
        max_s: samples[n - 1],
        samples: n,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    vcoord::netsim::simlog::init();
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let label = args
        .label
        .clone()
        .unwrap_or_else(|| args.scale_name.to_string());

    // --- Kernel timings -------------------------------------------------
    let budget = Duration::from_millis(400);
    let mut kernels: Vec<(String, KernelStats)> = Vec::new();
    for dim in [2usize, 8] {
        // The shared representative NPS positioning fixture (20 references;
        // see vcoord_bench::simplex_fixture — also used by the kernels
        // bench, so `cargo bench` and this baseline stay comparable).
        let (refs, opts, start) = vcoord_bench::simplex_fixture(dim);
        let mut scratch = SimplexScratch::new();
        let objective = vcoord_bench::fit_objective(&refs);
        kernels.push((
            format!("simplex_{dim}d_20refs"),
            time_kernel(budget, || {
                std::hint::black_box(simplex_downhill_scratch(
                    &objective,
                    &start,
                    &opts,
                    &mut scratch,
                ));
            }),
        ));
        kernels.push((
            format!("simplex_oracle_{dim}d_20refs"),
            time_kernel(budget, || {
                std::hint::black_box(simplex_downhill_reference(&objective, &start, &opts));
            }),
        ));
    }
    {
        // A trivial objective isolates pure kernel overhead (sorting,
        // centroid, trial-point management, allocation) — the number the
        // ≥2×-over-oracle target is judged on; the 20-ref fixtures above
        // measure the realistic NPS mix where objective evaluation bounds
        // the achievable speedup.
        let dim = 8;
        let objective = |x: &[f64]| -> f64 { x.iter().map(|v| (v - 3.0) * (v - 3.0)).sum::<f64>() };
        let opts = vcoord_bench::simplex_bench_opts();
        let start = vec![1.0; dim];
        let mut scratch = SimplexScratch::new();
        kernels.push((
            "simplex_8d_quadratic".into(),
            time_kernel(budget, || {
                std::hint::black_box(simplex_downhill_scratch(
                    objective,
                    &start,
                    &opts,
                    &mut scratch,
                ));
            }),
        ));
        kernels.push((
            "simplex_oracle_8d_quadratic".into(),
            time_kernel(budget, || {
                std::hint::black_box(simplex_downhill_reference(objective, &start, &opts));
            }),
        ));
    }
    {
        let seeds = SeedStream::new(3);
        let matrix =
            KingLike::new(KingLikeConfig::with_nodes(400)).generate(&mut seeds.rng("topo"));
        let space = Space::Euclidean(2);
        let mut rng = seeds.rng("plan");
        let nodes: Vec<usize> = (0..400).collect();
        let plan = EvalPlan::with_params(&nodes, 128, 96, &mut rng);
        let coords: Vec<Coord> = (0..400)
            .map(|_| space.random_coord(150.0, &mut rng))
            .collect();
        kernels.push((
            "eval_plan_avg_error_400n_96peers".into(),
            time_kernel(budget, || {
                std::hint::black_box(plan.avg_error(&coords, &space, &matrix));
            }),
        ));
    }
    for (name, s) in &kernels {
        println!(
            "{name:<36} {:>9.3e} s median ({} samples, mean {:.3e})",
            s.median_s, s.samples, s.mean_s
        );
    }

    // --- Figure wall-clocks ---------------------------------------------
    let ids: Vec<String> = if args.ids.is_empty() || args.ids.iter().any(|i| i == "all") {
        registry::figure_ids()
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        args.ids.clone()
    };
    let mut figures: Vec<(String, f64)> = Vec::new();
    let sweep_start = Instant::now();
    for id in &ids {
        let start = Instant::now();
        match registry::run_figure(id, &args.scale, args.seed) {
            Some(_) => {
                let secs = start.elapsed().as_secs_f64();
                println!("{id:<20} {secs:>8.2}s");
                figures.push((id.clone(), secs));
            }
            None => {
                eprintln!("unknown figure id: {id} (try --list on the figures binary)");
                std::process::exit(1);
            }
        }
    }
    let figures_total = sweep_start.elapsed().as_secs_f64();

    // --- JSON -----------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"label\": \"{}\",\n", json_escape(&label)));
    json.push_str("  \"schema\": 1,\n");
    json.push_str(&format!("  \"scale\": \"{}\",\n", args.scale_name));
    json.push_str(&format!("  \"seed\": {},\n", args.seed));
    json.push_str(&format!(
        "  \"threads\": {},\n",
        vcoord::metrics::worker_threads()
    ));
    json.push_str("  \"kernels\": {\n");
    for (i, (name, s)) in kernels.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"mean_s\": {:e}, \"median_s\": {:e}, \"min_s\": {:e}, \"max_s\": {:e}, \"samples\": {}}}{}\n",
            json_escape(name),
            s.mean_s,
            s.median_s,
            s.min_s,
            s.max_s,
            s.samples,
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"figures\": {\n");
    for (i, (id, secs)) in figures.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {:.3}{}\n",
            json_escape(id),
            secs,
            if i + 1 < figures.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!("  \"figures_total_s\": {figures_total:.3}\n"));
    json.push_str("}\n");

    std::fs::create_dir_all(&args.out).expect("create output directory");
    let path = args.out.join(format!("BENCH_{label}.json"));
    let mut file = std::fs::File::create(&path).expect("create baseline file");
    file.write_all(json.as_bytes()).expect("write baseline");
    println!(
        "# wrote {} ({} kernels, {} figures, {:.1}s total figure time)",
        path.display(),
        kernels.len(),
        figures.len(),
        figures_total
    );
}
