//! Digest `vcoord-obs` trace files into per-round tables.
//!
//! ```text
//! obs-report [--csv] FILE...
//!
//!   FILE...  JSONL traces written by `figures --trace-out DIR`
//!   --csv    emit `kind,metric,round,count,sum,min,max` CSV instead of
//!            the aligned text tables
//! ```
//!
//! Each file is parsed against the schema documented in the `vcoord-obs`
//! crate root and reduced to whole-run counters, histogram summaries, and
//! per-round event aggregates (events collapse over repetitions and
//! nodes). A malformed file aborts with the offending line number and a
//! non-zero exit so CI catches schema drift.

use vcoord::obs::{digest, parse_jsonl};

fn main() {
    let mut csv = false;
    let mut files = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--csv" => csv = true,
            "--help" | "-h" => {
                eprintln!("usage: obs-report [--csv] FILE...");
                return;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => files.push(other.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: obs-report [--csv] FILE...");
        std::process::exit(2);
    }

    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: {e}");
                std::process::exit(1);
            }
        };
        let lines = match parse_jsonl(&text) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("{file}: {e}");
                std::process::exit(1);
            }
        };
        let d = digest(&lines);
        if csv {
            print!("{}", d.to_csv());
        } else {
            print!("{}", d.to_text());
        }
    }
}
