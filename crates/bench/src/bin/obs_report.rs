//! Digest `vcoord-obs` trace files into per-round tables, or fan a whole
//! trace directory into one health matrix.
//!
//! ```text
//! obs-report [--csv] [--summary] PATH...
//!
//!   PATH...    JSONL traces written by `figures --trace-out DIR`, or
//!              directories thereof (expanded to their *.jsonl files,
//!              sorted by name)
//!   --csv      emit CSV instead of the aligned text tables
//!   --summary  one health-matrix row per trace (bans, reinstates, chaos
//!              faults/recoveries, warm-start share) instead of the full
//!              per-trace digests
//! ```
//!
//! Each file is parsed against the schema documented in the `vcoord-obs`
//! crate root and reduced to whole-run counters, histogram summaries, and
//! per-round event aggregates (events collapse over repetitions and
//! nodes). A malformed file aborts with the offending line number and
//! exit 1 so CI catches schema drift; empty input (no files named, or
//! directories holding no traces) is its own error, exit 3 — a silently
//! empty report once masked a mis-pointed CI path.

use std::path::Path;
use vcoord::obs::{digest, parse_jsonl, summarize, summary_csv, summary_text};

fn main() {
    let mut csv = false;
    let mut summary = false;
    let mut paths = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--csv" => csv = true,
            "--summary" => summary = true,
            "--help" | "-h" => {
                eprintln!("usage: obs-report [--csv] [--summary] PATH...");
                return;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.is_empty() {
        eprintln!("usage: obs-report [--csv] [--summary] PATH...");
        std::process::exit(2);
    }

    // Expand directories to their *.jsonl files, sorted for stable output.
    let mut files: Vec<String> = Vec::new();
    for path in &paths {
        if Path::new(path).is_dir() {
            let mut found: Vec<String> = match std::fs::read_dir(path) {
                Ok(entries) => entries
                    .filter_map(|entry| {
                        let p = entry.ok()?.path();
                        let is_trace = p.extension().is_some_and(|e| e == "jsonl");
                        is_trace.then(|| p.to_string_lossy().into_owned())
                    })
                    .collect(),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    std::process::exit(1);
                }
            };
            found.sort();
            files.extend(found);
        } else {
            files.push(path.clone());
        }
    }
    if files.is_empty() {
        eprintln!("obs-report: no *.jsonl traces in the given directories");
        std::process::exit(3);
    }

    let mut rows = Vec::new();
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: {e}");
                std::process::exit(1);
            }
        };
        let lines = match parse_jsonl(&text) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("{file}: {e}");
                std::process::exit(1);
            }
        };
        let d = digest(&lines);
        if summary {
            rows.push(summarize(&d));
        } else if csv {
            print!("{}", d.to_csv());
        } else {
            print!("{}", d.to_text());
        }
    }
    if summary {
        if csv {
            print!("{}", summary_csv(&rows));
        } else {
            print!("{}", summary_text(&rows));
        }
    }
}
