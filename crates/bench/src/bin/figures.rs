//! Regenerate the paper's evaluation figures.
//!
//! ```text
//! figures [IDS...] [--full|--quick|--smoke] [--seed N] [--out DIR] [--list]
//!
//!   IDS        figure ids (fig1 .. fig26) or `all` (default: all)
//!   --quick    400 nodes, 3 repetitions (default; minutes)
//!   --full     1740 nodes, 10 repetitions (paper scale; hours)
//!   --smoke    72 nodes, 1 repetition (seconds; sanity only)
//!   --seed N   master seed (default 2006, the paper's year)
//!   --out DIR  CSV output directory (default ./results)
//!   --list     print the figure index and exit
//! ```
//!
//! Each figure prints as an aligned table and is written to
//! `DIR/<id>.csv`. Shape notes (the qualitative claims the paper makes
//! about each figure) are embedded as `#`-comments.

use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;
use vcoord::experiments::{registry, Scale};

struct Args {
    ids: Vec<String>,
    scale: Scale,
    scale_name: &'static str,
    seed: u64,
    out: PathBuf,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut ids = Vec::new();
    let mut scale = Scale::quick();
    let mut scale_name = "quick";
    let mut seed = 2006u64;
    let mut out = PathBuf::from(vcoord_bench::DEFAULT_OUT_DIR);
    let mut list = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => {
                scale = Scale::quick();
                scale_name = "quick";
            }
            "--full" => {
                scale = Scale::full();
                scale_name = "full";
            }
            "--smoke" => {
                scale = Scale::smoke();
                scale_name = "smoke";
            }
            "--seed" => {
                seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--out" => {
                out = PathBuf::from(argv.next().ok_or("--out needs a value")?);
            }
            "--list" => list = true,
            "--help" | "-h" => {
                return Err("usage: figures [IDS...|all] [--quick|--full|--smoke] [--seed N] [--out DIR] [--list]".into());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}"));
            }
            other => ids.push(other.to_string()),
        }
    }
    Ok(Args {
        ids,
        scale,
        scale_name,
        seed,
        out,
        list,
    })
}

fn main() {
    vcoord::netsim::simlog::init();
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    if args.list {
        println!("available figures:");
        for id in registry::figure_ids() {
            println!("  {id:<7} {}", registry::describe(id).unwrap_or(""));
        }
        return;
    }

    let ids: Vec<String> = if args.ids.is_empty() || args.ids.iter().any(|i| i == "all") {
        registry::figure_ids()
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        args.ids.clone()
    };

    std::fs::create_dir_all(&args.out).expect("create output directory");
    println!(
        "# vcoord figure harness — scale={} nodes={} reps={} seed={}",
        args.scale_name, args.scale.nodes, args.scale.repetitions, args.seed
    );

    let mut failures = 0;
    let total_start = Instant::now();

    // Figures compute multi-threaded (each fans repetitions over a worker
    // pool), but rendering + writing a CSV is serial I/O — push it onto a
    // dedicated writer thread so the next figure's compute overlaps the
    // previous figure's output. The channel is FIFO, so stdout stays in
    // figure order; joining the writer before the summary line keeps the
    // output complete.
    let (tx, rx) = std::sync::mpsc::channel::<(vcoord::experiments::FigureResult, f64)>();
    let out_dir = args.out.clone();
    let writer = std::thread::spawn(move || {
        for (fig, compute_secs) in rx {
            println!("{}", fig.to_table());
            let path = out_dir.join(format!("{}.csv", fig.id));
            let mut file = std::fs::File::create(&path).expect("create CSV");
            file.write_all(fig.to_csv().as_bytes()).expect("write CSV");
            println!(
                "wrote {} ({} rows) in {compute_secs:.1}s\n",
                path.display(),
                fig.rows.len(),
            );
        }
    });

    for id in &ids {
        let start = Instant::now();
        match registry::run_figure(id, &args.scale, args.seed) {
            // Stamp the compute time here: on the writer thread it would
            // also count time spent queued behind earlier figures' I/O.
            Some(fig) => tx
                .send((fig, start.elapsed().as_secs_f64()))
                .expect("writer thread alive"),
            None => {
                eprintln!("unknown figure id: {id} (try --list)");
                failures += 1;
            }
        }
    }
    drop(tx);
    writer.join().expect("writer thread panicked");

    println!(
        "# done: {} figures in {:.1}s",
        ids.len() - failures,
        total_start.elapsed().as_secs_f64()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
