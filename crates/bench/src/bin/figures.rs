//! Regenerate the paper's evaluation figures.
//!
//! ```text
//! figures [IDS...] [--full|--quick|--smoke] [--seed N] [--jobs N] [--out DIR]
//!         [--trace-out DIR] [--profile DIR] [--progress] [--list]
//!
//!   IDS        figure ids (fig1 .. fig26) or `all` (default: all)
//!   --quick    400 nodes, 3 repetitions (default; minutes)
//!   --full     1740 nodes, 10 repetitions (paper scale; hours)
//!   --smoke    72 nodes, 1 repetition (seconds; sanity only)
//!   --seed N   master seed (default 2006, the paper's year)
//!   --jobs N   figure ids computed concurrently (default: the
//!              VCOORD_THREADS override when set, else 1)
//!   --out DIR  CSV output directory (default ./results)
//!   --trace-out DIR
//!              enable full tracing (`vcoord-obs` in `Trace` mode) and
//!              write one `DIR/<id>.jsonl` trace per figure
//!   --profile DIR
//!              enable metrics (at least) and write `DIR/profile.jsonl`:
//!              one per-figure phase-attribution line (netsim vs Simplex
//!              vs defense vs EvalPlan vs harness overhead, from the span
//!              sites). Wall-clock data: non-golden by design
//!   --progress heartbeat lines on stderr after each figure, with an ETA
//!              extrapolated from `BENCH_<scale>.json` when present
//!   --list     print the figure index and exit
//! ```
//!
//! Each figure prints as an aligned table and is written to
//! `DIR/<id>.csv`. Shape notes (the qualitative claims the paper makes
//! about each figure) are embedded as `#`-comments.
//!
//! Every figure derives its seeds from `(master seed, figure id)` alone, so
//! `--jobs` changes wall-clock time but never a CSV byte; the writer thread
//! reorders completions so stdout also stays in figure order. Traces are
//! deterministic too: `run_repetitions` merges per-repetition observations
//! in repetition order, each figure worker drains its own thread-local
//! recorder, and the trace's `run` id is derived from the scale and seed
//! alone, so `--jobs` never changes a JSONL byte either. The profile and
//! progress planes deliberately live *outside* that guarantee: wall-clock
//! samples are stripped from traces before rendering (`strip_timings`) and
//! only ever reach the separate `profile.jsonl` / stderr, so compiling the
//! profiling in — or running with it on — cannot move a golden byte.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use vcoord::experiments::{registry, Scale};

struct Args {
    ids: Vec<String>,
    scale: Scale,
    scale_name: &'static str,
    seed: u64,
    jobs: usize,
    out: PathBuf,
    trace_out: Option<PathBuf>,
    profile: Option<PathBuf>,
    progress: bool,
    list: bool,
}

/// Per-figure wall-clock attribution, computed from the span histograms of
/// one figure's (pre-`strip_timings`) report. All values in seconds.
struct ProfileRow {
    wall_s: f64,
    netsim_s: f64,
    simplex_s: f64,
    defense_s: f64,
    eval_plan_s: f64,
    harness_s: f64,
}

impl ProfileRow {
    /// Attribute `wall_s` across phases. The span sites nest — Simplex
    /// fits and defense inspections run inside the sim engines, the
    /// engines inside `figure.rep_ns` — so inner phases are subtracted
    /// from their enclosing spans (clamped at 0: timer jitter can make a
    /// sum of inner spans exceed the outer read).
    fn new(report: &vcoord::obs::ObsReport, wall_s: f64) -> ProfileRow {
        let ns = |name: &str| -> f64 {
            report
                .hists()
                .iter()
                .find(|(id, _)| vcoord::obs::metric_name(*id) == name)
                .map(|(_, h)| h.sum / 1e9)
                .unwrap_or(0.0)
        };
        let rep = ns("figure.rep_ns");
        let engines = ns("vivaldi.run_ticks_ns") + ns("nps.run_rounds_ns") + ns("nps.embed_ns");
        let simplex_s = ns("simplex.fit_ns");
        let defense_s = ns("defense.inspect_ns");
        let eval_plan_s = ns("evalplan.worker_ns");
        ProfileRow {
            wall_s,
            netsim_s: (engines - simplex_s - defense_s).max(0.0),
            simplex_s,
            defense_s,
            // EvalPlan chunks run on pool threads; their summed time can
            // exceed the coordinator's wall wait when the pool is wider
            // than one, in which case harness overhead clamps to zero.
            eval_plan_s,
            harness_s: (rep - engines - eval_plan_s).max(0.0),
        }
    }

    fn render(&self, fig: &str) -> String {
        format!(
            "{{\"type\":\"profile\",\"fig\":\"{fig}\",\"wall_s\":{:.6},\"netsim_s\":{:.6},\"simplex_s\":{:.6},\"defense_s\":{:.6},\"eval_plan_s\":{:.6},\"harness_s\":{:.6}}}\n",
            self.wall_s,
            self.netsim_s,
            self.simplex_s,
            self.defense_s,
            self.eval_plan_s,
            self.harness_s,
        )
    }
}

/// Per-figure baseline seconds from `BENCH_<scale>.json` in the working
/// directory, for `--progress` ETAs. Absent file (or figure) degrades to
/// no ETA — progress still prints counts and times.
fn load_baseline(scale_name: &str) -> BTreeMap<String, f64> {
    let Ok(text) = std::fs::read_to_string(format!("BENCH_{scale_name}.json")) else {
        return BTreeMap::new();
    };
    let Ok(json) = vcoord::obs::diff::parse_json(&text) else {
        return BTreeMap::new();
    };
    json.get("figures")
        .and_then(vcoord::obs::diff::Json::as_obj)
        .map(|figs| {
            figs.iter()
                .filter_map(|(id, v)| Some((id.clone(), v.as_num()?)))
                .collect()
        })
        .unwrap_or_default()
}

fn parse_args() -> Result<Args, String> {
    let mut ids = Vec::new();
    let mut scale = Scale::quick();
    let mut scale_name = "quick";
    let mut seed = 2006u64;
    let mut jobs = vcoord::metrics::parallel::env_threads().unwrap_or(1);
    let mut out = PathBuf::from(vcoord_bench::DEFAULT_OUT_DIR);
    let mut trace_out = None;
    let mut profile = None;
    let mut progress = false;
    let mut list = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => {
                scale = Scale::quick();
                scale_name = "quick";
            }
            "--full" => {
                scale = Scale::full();
                scale_name = "full";
            }
            "--smoke" => {
                scale = Scale::smoke();
                scale_name = "smoke";
            }
            "--seed" => {
                seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--jobs" => {
                jobs = argv
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("bad job count: {e}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--out" => {
                out = PathBuf::from(argv.next().ok_or("--out needs a value")?);
            }
            "--trace-out" => {
                trace_out = Some(PathBuf::from(
                    argv.next().ok_or("--trace-out needs a value")?,
                ));
            }
            "--profile" => {
                profile = Some(PathBuf::from(argv.next().ok_or("--profile needs a value")?));
            }
            "--progress" => progress = true,
            "--list" => list = true,
            "--help" | "-h" => {
                return Err("usage: figures [IDS...|all] [--quick|--full|--smoke] [--seed N] [--jobs N] [--out DIR] [--trace-out DIR] [--profile DIR] [--progress] [--list]".into());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}"));
            }
            other => ids.push(other.to_string()),
        }
    }
    Ok(Args {
        ids,
        scale,
        scale_name,
        seed,
        jobs,
        out,
        trace_out,
        profile,
        progress,
        list,
    })
}

fn main() {
    vcoord::netsim::simlog::init();
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    // `--trace-out` forces full tracing; otherwise honor VCOORD_OBS so the
    // aggregate/metrics planes can be flipped on without trace files.
    if args.trace_out.is_some() {
        vcoord::obs::set_mode(vcoord::obs::ObsMode::Trace);
    } else {
        vcoord::obs::init_from_env();
    }
    // `--profile` needs the span histograms, so it upgrades Off to Metrics;
    // an explicit Trace (or VCOORD_OBS=metrics) choice is left alone.
    if args.profile.is_some() && matches!(vcoord::obs::mode(), vcoord::obs::ObsMode::Off) {
        vcoord::obs::set_mode(vcoord::obs::ObsMode::Metrics);
    }

    if args.list {
        println!("available figures:");
        for id in registry::figure_ids() {
            println!("  {id:<7} {}", registry::describe(id).unwrap_or(""));
        }
        return;
    }

    let requested: Vec<String> = if args.ids.is_empty() || args.ids.iter().any(|i| i == "all") {
        registry::figure_ids()
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        args.ids.clone()
    };

    // Validate up front so a typo fails fast instead of after an hour of
    // `--full` compute on the ids before it.
    let mut failures = 0;
    let ids: Vec<String> = requested
        .into_iter()
        .filter(|id| {
            let known = registry::describe(id).is_some();
            if !known {
                eprintln!("unknown figure id: {id} (try --list)");
                failures += 1;
            }
            known
        })
        .collect();

    std::fs::create_dir_all(&args.out).expect("create output directory");
    if let Some(dir) = &args.trace_out {
        std::fs::create_dir_all(dir).expect("create trace directory");
    }
    if let Some(dir) = &args.profile {
        std::fs::create_dir_all(dir).expect("create profile directory");
    }
    println!(
        "# vcoord figure harness — scale={} nodes={} reps={} seed={} jobs={}",
        args.scale_name, args.scale.nodes, args.scale.repetitions, args.seed, args.jobs
    );

    let total_start = Instant::now();

    // Split the machine budget among the `--jobs` workers: every figure
    // job sizes its internal pools (repetitions, EvalPlan sweeps) via
    // worker_threads(), so without this cap `jobs × pools` would compound
    // multiplicatively instead of staying at the pinned total.
    if args.jobs > 1 {
        let total = vcoord::metrics::worker_threads();
        vcoord::metrics::parallel::set_worker_budget((total / args.jobs).max(1));
    }

    // Figure compute fans out over `--jobs` workers (each figure already
    // fans repetitions over its own bounded pool); rendering + writing a
    // CSV is serial I/O on a dedicated writer thread so compute overlaps
    // output. Per-figure seeding makes the CSV bytes independent of the
    // completion order; the writer's reorder buffer keeps stdout in figure
    // order too.
    type Done = (
        usize,
        vcoord::experiments::FigureResult,
        f64,
        Option<vcoord::obs::ObsReport>,
        Option<ProfileRow>,
    );
    let (tx, rx) = std::sync::mpsc::channel::<Done>();
    let out_dir = args.out.clone();
    let trace_dir = args.trace_out.clone();
    let profile_dir = args.profile.clone();
    // Wall-clock-free run id: reruns of the same scale+seed are
    // byte-identical, which is what the golden-trace tests compare.
    let run_id = format!("{}-seed{}", args.scale_name, args.seed);
    let scale_name = args.scale_name;
    let seed = args.seed;
    let jobs = args.jobs;
    let progress = args.progress;
    let writer_ids: Vec<String> = ids.clone();
    let writer = std::thread::spawn(move || {
        let mut profile_file = profile_dir.map(|dir| {
            let path = dir.join("profile.jsonl");
            let mut file = std::fs::File::create(&path).expect("create profile JSONL");
            writeln!(
                file,
                "{{\"type\":\"meta\",\"run\":\"{run_id}\",\"scale\":\"{scale_name}\",\"seed\":{seed},\"jobs\":{jobs}}}"
            )
            .expect("write profile meta");
            (path, file)
        });
        let baseline = if progress {
            load_baseline(scale_name)
        } else {
            BTreeMap::new()
        };
        let mut pending: BTreeMap<
            usize,
            (
                vcoord::experiments::FigureResult,
                f64,
                Option<vcoord::obs::ObsReport>,
                Option<ProfileRow>,
            ),
        > = BTreeMap::new();
        let mut next = 0usize;
        for (idx, fig, compute_secs, report, prof) in rx {
            pending.insert(idx, (fig, compute_secs, report, prof));
            while let Some((fig, compute_secs, report, prof)) = pending.remove(&next) {
                println!("{}", fig.to_table());
                let path = out_dir.join(format!("{}.csv", fig.id));
                let mut file = std::fs::File::create(&path).expect("create CSV");
                file.write_all(fig.to_csv().as_bytes()).expect("write CSV");
                if let (Some(dir), Some(report)) = (&trace_dir, report) {
                    let meta = vcoord::obs::TraceMeta {
                        run: run_id.clone(),
                        fig: fig.id.clone(),
                        seed,
                        scale: scale_name.to_string(),
                    };
                    let trace_path = dir.join(format!("{}.jsonl", fig.id));
                    std::fs::write(&trace_path, vcoord::obs::render_jsonl(&meta, &report))
                        .expect("write trace");
                    println!("wrote {}", trace_path.display());
                }
                if let (Some((_, file)), Some(prof)) = (&mut profile_file, prof) {
                    file.write_all(prof.render(&fig.id).as_bytes())
                        .expect("write profile row");
                }
                println!(
                    "wrote {} ({} rows) in {compute_secs:.1}s\n",
                    path.display(),
                    fig.rows.len(),
                );
                next += 1;
                if progress {
                    // ETA extrapolates the committed baseline's per-figure
                    // seconds by this run's observed pace so far; without a
                    // baseline (or on the last figure) only counts print.
                    let done: f64 = writer_ids[..next]
                        .iter()
                        .filter_map(|id| baseline.get(id))
                        .sum();
                    let left: f64 = writer_ids[next..]
                        .iter()
                        .filter_map(|id| baseline.get(id))
                        .sum();
                    let elapsed = total_start.elapsed().as_secs_f64();
                    if done > 0.0 && next < writer_ids.len() {
                        eprintln!(
                            "[{next}/{}] {} in {compute_secs:.1}s — eta {:.0}s",
                            writer_ids.len(),
                            fig.id,
                            elapsed / done * left,
                        );
                    } else {
                        eprintln!(
                            "[{next}/{}] {} in {compute_secs:.1}s",
                            writer_ids.len(),
                            fig.id,
                        );
                    }
                }
            }
        }
        if let Some((path, _)) = &profile_file {
            println!("wrote {}", path.display());
        }
    });

    let workers = args.jobs.min(ids.len()).max(1);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let ids = &ids;
            let cursor = &cursor;
            let scale = &args.scale;
            let seed = args.seed;
            let traced = args.trace_out.is_some();
            let profiled = args.profile.is_some();
            scope.spawn(move || loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(id) = ids.get(idx) else { break };
                let start = Instant::now();
                // Each worker computes one figure at a time, so its
                // thread-local recorder (plus the per-repetition merges
                // absorbed by run_repetitions) holds exactly that figure's
                // observations between reset() and drain().
                if traced || profiled {
                    vcoord::obs::reset();
                }
                // Stamp the compute time here: on the writer thread it
                // would also count time spent queued behind earlier
                // figures' I/O.
                let fig = registry::run_figure(id, scale, seed).expect("id validated above");
                let wall_s = start.elapsed().as_secs_f64();
                let mut report = (traced || profiled).then(vcoord::obs::drain);
                // Attribute phases from the raw report: the profile plane
                // is the one consumer of the timing spans.
                let prof = match (&report, profiled) {
                    (Some(r), true) => Some(ProfileRow::new(r, wall_s)),
                    _ => None,
                };
                // Wall-clock histograms are nondeterministic; everything
                // else in the report is seed-derived, so stripping them
                // keeps the JSONL byte-stable across reruns and --jobs.
                if let Some(r) = &mut report {
                    r.strip_timings();
                }
                tx.send((idx, fig, wall_s, report.filter(|_| traced), prof))
                    .expect("writer thread alive");
            });
        }
    });
    drop(tx);
    writer.join().expect("writer thread panicked");

    println!(
        "# done: {} figures in {:.1}s",
        ids.len(),
        total_start.elapsed().as_secs_f64()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
