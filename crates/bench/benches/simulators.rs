//! Whole-simulator throughput: cost of simulated time on both systems.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use vcoord::netsim::SeedStream;
use vcoord::nps::{NpsConfig, NpsSim};
use vcoord::space::Space;
use vcoord::topo::{KingLike, KingLikeConfig};
use vcoord::vivaldi::{VivaldiConfig, VivaldiSim};

fn bench_vivaldi_ticks(c: &mut Criterion) {
    let mut group = c.benchmark_group("vivaldi_sim");
    for n in [100usize, 400] {
        let seeds = SeedStream::new(10);
        let matrix = KingLike::new(KingLikeConfig::with_nodes(n)).generate(&mut seeds.rng("topo"));
        group.bench_function(format!("tick_{n}nodes"), |b| {
            b.iter_batched(
                || VivaldiSim::new(matrix.clone(), VivaldiConfig::default(), &seeds),
                |mut sim| sim.run_ticks(5),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_vivaldi_setup(c: &mut Criterion) {
    let seeds = SeedStream::new(11);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(400)).generate(&mut seeds.rng("topo"));
    c.bench_function("vivaldi_sim_setup_400nodes", |b| {
        b.iter(|| VivaldiSim::new(matrix.clone(), VivaldiConfig::default(), &seeds))
    });
}

fn bench_nps_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("nps_sim");
    group.sample_size(10);
    let seeds = SeedStream::new(12);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(150)).generate(&mut seeds.rng("topo"));
    let config = NpsConfig {
        landmarks: 15,
        refs_per_node: 15,
        space: Space::Euclidean(4),
        ..NpsConfig::default()
    };
    group.bench_function("round_150nodes", |b| {
        b.iter_batched(
            || {
                let mut sim = NpsSim::new(matrix.clone(), config.clone(), &seeds);
                sim.run_ms(300_000); // past the join window
                sim
            },
            |mut sim| sim.run_rounds(1),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_topo_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("topo_synth");
    group.sample_size(10);
    for n in [200usize, 1740] {
        group.bench_function(format!("king_like_{n}"), |b| {
            let seeds = SeedStream::new(13);
            b.iter(|| KingLike::new(KingLikeConfig::with_nodes(n)).generate(&mut seeds.rng("topo")))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_vivaldi_ticks, bench_vivaldi_setup, bench_nps_rounds, bench_topo_synthesis
}
criterion_main!(benches);
