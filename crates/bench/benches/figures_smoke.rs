//! End-to-end smoke benches over representative figure runners.
//!
//! One runner per figure *family* (time-series, CDF, sweep, ledger,
//! diagram) at a micro scale, proving the whole harness — topology
//! synthesis, both simulators, attacks, metrics, aggregation — executes
//! end-to-end under `cargo bench` and tracking its wall-clock cost.
//! The complete per-figure regeneration lives in the `figures` binary;
//! `tests/figures_smoke.rs` covers every id.

use criterion::{criterion_group, criterion_main, Criterion};
use vcoord::experiments::{registry, Scale};

fn micro_scale() -> Scale {
    Scale {
        nodes: 48,
        repetitions: 1,
        vivaldi_warmup_ticks: 40,
        vivaldi_attack_ticks: 60,
        vivaldi_record_every: 10,
        nps_warmup_rounds: 6,
        nps_attack_rounds: 10,
        nps_record_every: 2,
        eval_all_pairs_threshold: 64,
        eval_sample_peers: 32,
    }
}

fn bench_figures(c: &mut Criterion) {
    let scale = micro_scale();
    let mut group = c.benchmark_group("figures_micro");
    group.sample_size(10);
    // One per family: Vivaldi ratio-vs-time, Vivaldi CDF, NPS
    // security-on/off time series, NPS ledger sweep, static diagram.
    for id in ["fig1", "fig5", "fig14", "fig22", "fig17"] {
        group.bench_function(id, |b| {
            b.iter(|| registry::run_figure(id, &scale, 1).expect("known id"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(8)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_figures
}
criterion_main!(benches);
