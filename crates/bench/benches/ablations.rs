//! Ablation benches for the design choices called out in DESIGN.md.
//!
//! * **Error sampling** — all-pairs vs fixed-sample evaluation plans: the
//!   sampled plan must be much cheaper (it is what makes 1740-node time
//!   series affordable); its accuracy deviation is asserted in
//!   `tests/metrics_ablation.rs`.
//! * **Simplex budget** — positioning cost versus the iteration cap, the
//!   main NPS throughput knob.
//! * **Seed streams** — labelled-stream derivation cost (paid once per
//!   subsystem, must stay negligible).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vcoord::metrics::EvalPlan;
use vcoord::netsim::SeedStream;
use vcoord::space::{simplex_downhill, Coord, SimplexOptions, Space};
use vcoord::topo::{KingLike, KingLikeConfig};

fn bench_error_sampling(c: &mut Criterion) {
    let seeds = SeedStream::new(20);
    let n = 400;
    let matrix = KingLike::new(KingLikeConfig::with_nodes(n)).generate(&mut seeds.rng("topo"));
    let space = Space::Euclidean(2);
    let mut rng = seeds.rng("plan");
    let nodes: Vec<usize> = (0..n).collect();
    let coords: Vec<Coord> = (0..n)
        .map(|_| space.random_coord(150.0, &mut rng))
        .collect();

    let all_pairs = EvalPlan::with_params(&nodes, usize::MAX, 0, &mut rng);
    let sampled = EvalPlan::with_params(&nodes, 0, 96, &mut rng);

    let mut group = c.benchmark_group("ablation_error_sampling_400n");
    group.bench_function("all_pairs", |b| {
        b.iter(|| all_pairs.avg_error(black_box(&coords), &space, &matrix))
    });
    group.bench_function("sampled_96", |b| {
        b.iter(|| sampled.avg_error(black_box(&coords), &space, &matrix))
    });
    group.finish();
}

fn bench_simplex_budget(c: &mut Criterion) {
    let seeds = SeedStream::new(21);
    let space = Space::Euclidean(8);
    let mut rng = seeds.rng("refs");
    let refs: Vec<(Coord, f64)> = (0..20)
        .map(|_| (space.random_coord(150.0, &mut rng), 90.0))
        .collect();
    let objective = |x: &[f64]| -> f64 {
        let p = Coord::from_vec(x.to_vec());
        refs.iter()
            .map(|(c0, d)| {
                let e = (space.distance(&p, c0) - d) / d;
                e * e
            })
            .sum()
    };
    let start = vec![5.0; 8];
    let mut group = c.benchmark_group("ablation_simplex_budget");
    for iters in [50usize, 150, 400] {
        let opts = SimplexOptions {
            max_iterations: iters,
            initial_step: 20.0,
            ..SimplexOptions::default()
        };
        group.bench_function(format!("{iters}iters"), |b| {
            b.iter(|| simplex_downhill(objective, black_box(&start), &opts))
        });
    }
    group.finish();
}

fn bench_seed_streams(c: &mut Criterion) {
    let seeds = SeedStream::new(22);
    c.bench_function("ablation_seed_stream_rng", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            seeds.rng_indexed(black_box("node"), k)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_error_sampling, bench_simplex_budget, bench_seed_streams
}
criterion_main!(benches);
