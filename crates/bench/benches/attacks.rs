//! Attack hot paths: lie construction must be cheap enough to serve every
//! probe (it runs inside the simulator's innermost loop).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use vcoord::attacks::geometry::{anti_detection_lie, repulsion_lie};
use vcoord::space::Space;

fn bench_repulsion_lie(c: &mut Criterion) {
    let space = Space::Euclidean(2);
    let mut rng = ChaCha12Rng::seed_from_u64(1);
    let victim = space.random_coord(150.0, &mut rng);
    let target = space.random_coord(10_000.0, &mut rng);
    c.bench_function("repulsion_lie_2d", |b| {
        b.iter(|| {
            repulsion_lie(
                &space,
                black_box(&victim),
                black_box(&target),
                0.25,
                &mut rng,
            )
        })
    });
}

fn bench_anti_detection_lie(c: &mut Criterion) {
    let space = Space::Euclidean(8);
    let mut rng = ChaCha12Rng::seed_from_u64(2);
    let victim = space.random_coord(150.0, &mut rng);
    let attacker = space.random_coord(150.0, &mut rng);
    let d = space.distance(&victim, &attacker);
    let mut group = c.benchmark_group("anti_detection_lie_8d");
    group.bench_function("with_knowledge", |b| {
        b.iter(|| {
            anti_detection_lie(
                &space,
                black_box(&victim),
                black_box(&attacker),
                d,
                199.0,
                0.9,
                true,
                &mut rng,
            )
        })
    });
    group.bench_function("guessing", |b| {
        b.iter(|| {
            anti_detection_lie(
                &space,
                black_box(&attacker),
                black_box(&attacker),
                d / 2.0,
                199.0,
                0.9,
                false,
                &mut rng,
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_repulsion_lie, bench_anti_detection_lie
}
criterion_main!(benches);
