//! Attack hot paths: lie construction must be cheap enough to serve every
//! probe (it runs inside the simulator's innermost loop).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use vcoord::attackkit::{
    AttackStrategy, CoordView, DefenseModel, Deflation, EvadingFrogBoil, FrogBoiling, Inflation,
    NetworkPartition, Oscillation, Probe, Protocol, RandomLie, Scenario, SleeperCollusion,
    ThresholdProbe,
};
use vcoord::attacks::geometry::{anti_detection_lie, repulsion_lie};
use vcoord::space::{Coord, Space};

fn bench_repulsion_lie(c: &mut Criterion) {
    let space = Space::Euclidean(2);
    let mut rng = ChaCha12Rng::seed_from_u64(1);
    let victim = space.random_coord(150.0, &mut rng);
    let target = space.random_coord(10_000.0, &mut rng);
    c.bench_function("repulsion_lie_2d", |b| {
        b.iter(|| {
            repulsion_lie(
                &space,
                black_box(&victim),
                black_box(&target),
                0.25,
                &mut rng,
            )
        })
    });
}

fn bench_anti_detection_lie(c: &mut Criterion) {
    let space = Space::Euclidean(8);
    let mut rng = ChaCha12Rng::seed_from_u64(2);
    let victim = space.random_coord(150.0, &mut rng);
    let attacker = space.random_coord(150.0, &mut rng);
    let d = space.distance(&victim, &attacker);
    let mut group = c.benchmark_group("anti_detection_lie_8d");
    group.bench_function("with_knowledge", |b| {
        b.iter(|| {
            anti_detection_lie(
                &space,
                black_box(&victim),
                black_box(&attacker),
                d,
                199.0,
                0.9,
                true,
                &mut rng,
            )
        })
    });
    group.bench_function("guessing", |b| {
        b.iter(|| {
            anti_detection_lie(
                &space,
                black_box(&attacker),
                black_box(&attacker),
                d / 2.0,
                199.0,
                0.9,
                false,
                &mut rng,
            )
        })
    });
    group.finish();
}

/// The attackkit strategies answer every probe of a malicious node inside
/// the simulator's innermost loop: a full scenario round-trip (round
/// bookkeeping + lie construction) must stay cheap.
fn bench_attackkit_strategies(c: &mut Criterion) {
    let space = Space::Euclidean(2);
    let mut rng = ChaCha12Rng::seed_from_u64(3);
    let n = 100;
    let coords: Vec<Coord> = (0..n)
        .map(|_| space.random_coord(150.0, &mut rng))
        .collect();
    let mut malicious = vec![true; n / 4];
    malicious.extend(vec![false; n - n / 4]);
    let attackers: Vec<usize> = (0..n / 4).collect();

    let strategies: Vec<(&str, Box<dyn AttackStrategy>)> = vec![
        ("frog_boiling", Box::new(FrogBoiling::default())),
        ("oscillation", Box::new(Oscillation::default())),
        ("partition", Box::new(NetworkPartition::default())),
        ("inflation", Box::new(Inflation::default())),
        ("deflation", Box::new(Deflation::default())),
        ("random_lie", Box::new(RandomLie::default())),
        // The arms-race layer: the evading frog's per-round cost includes
        // its O(victims × colluders) pull estimate — the price of modeling
        // the defense inside the innermost loop.
        (
            "evading_frog",
            Box::new(EvadingFrogBoil::new(5.0, DefenseModel::default())),
        ),
        ("threshold_probe", Box::new(ThresholdProbe::default())),
        ("sleeper", Box::new(SleeperCollusion::default())),
    ];

    let mut group = c.benchmark_group("attackkit_respond");
    for (label, strategy) in strategies {
        let view = CoordView {
            space: &space,
            coords: &coords,
            errors: &[],
            layer: &[],
            malicious: &malicious,
            is_ref: &[],
            round: 0,
            now_ms: 0,
            params: Protocol::default(),
        };
        let mut scenario = Scenario::new(strategy);
        scenario.inject(&attackers, &view, &mut rng);
        let probe = Probe {
            attacker: 0,
            victim: n - 1,
            rtt: 80.0,
        };
        let mut round = 0u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                // Advance the round each iteration so per-round hooks are
                // included in the measured cost.
                round += 1;
                let view = CoordView {
                    space: &space,
                    coords: &coords,
                    errors: &[],
                    layer: &[],
                    malicious: &malicious,
                    is_ref: &[],
                    round,
                    now_ms: round * 1000,
                    params: Protocol::default(),
                };
                scenario.respond(black_box(probe), &view, &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_repulsion_lie, bench_anti_detection_lie, bench_attackkit_strategies
}
criterion_main!(benches);
