//! Hot-path kernels: the per-event work of both simulators — plus the
//! defense-inspection kernel, benchmarked under the shared counting
//! allocator (`vcoord::obs::testing`) so the `NoDefense` zero-allocation
//! contract is *asserted*, not assumed — and the disabled-path cost of
//! the `vcoord-obs` recording calls those kernels now carry.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use vcoord::defense::testing::ring_fill_samples;
use vcoord::defense::{Defense, DriftCap, Provenance, ResidualOutlier, Update};
use vcoord::metrics::EvalPlan;
use vcoord::netsim::SeedStream;
use vcoord::obs::testing::{allocations, CountingAllocator};
use vcoord::space::simplex::oracle::simplex_downhill_reference;
use vcoord::space::{
    dist_batch, dist_batch_scalar, simplex_downhill_scratch, Coord, SimplexScratch, Space,
};
use vcoord::topo::{KingLike, KingLikeConfig};
use vcoord::vivaldi::node::vivaldi_update;

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn bench_vivaldi_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("vivaldi_update");
    for space in [
        Space::Euclidean(2),
        Space::Euclidean(5),
        Space::EuclideanHeight(2),
    ] {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut coord = space.random_coord(100.0, &mut rng);
        let mut error = 0.5;
        let remote = space.random_coord(100.0, &mut rng);
        group.bench_function(space.label(), |b| {
            b.iter(|| {
                vivaldi_update(
                    &space,
                    0.25,
                    (1e-6, 1e3),
                    black_box(&mut coord),
                    black_box(&mut error),
                    black_box(&remote),
                    0.3,
                    85.0,
                    &mut rng,
                )
            })
        });
    }
    group.finish();
}

fn bench_simplex(c: &mut Criterion) {
    // Every id runs the allocation-free kernel and its retained allocating
    // oracle (`vcoord_space::simplex::oracle`) on the *same* objective, so
    // the pairs read directly as the kernel speedup. The 20-ref ids model a
    // realistic NPS positioning round (objective evaluation bounds the
    // gain); the quadratic id isolates pure kernel overhead, where the
    // ≥2×-over-oracle target is judged.
    let mut group = c.benchmark_group("simplex_downhill");
    let opts = vcoord_bench::simplex_bench_opts();
    for dim in [2usize, 8] {
        // The shared representative NPS positioning fixture (20 references;
        // see vcoord_bench::simplex_fixture — also used by bench-baseline).
        let (refs, opts, start) = vcoord_bench::simplex_fixture(dim);
        let objective = vcoord_bench::fit_objective(&refs);
        let mut scratch = SimplexScratch::new();
        group.bench_function(format!("{dim}D_20refs_kernel"), |b| {
            b.iter(|| simplex_downhill_scratch(&objective, black_box(&start), &opts, &mut scratch))
        });
        group.bench_function(format!("{dim}D_20refs_oracle"), |b| {
            b.iter(|| simplex_downhill_reference(&objective, black_box(&start), &opts))
        });
    }
    {
        let quadratic = |x: &[f64]| -> f64 { x.iter().map(|v| (v - 3.0) * (v - 3.0)).sum::<f64>() };
        let start = vec![1.0; 8];
        let mut scratch = SimplexScratch::new();
        group.bench_function("8D_quadratic_kernel", |b| {
            b.iter(|| simplex_downhill_scratch(quadratic, black_box(&start), &opts, &mut scratch))
        });
        group.bench_function("8D_quadratic_oracle", |b| {
            b.iter(|| simplex_downhill_reference(quadratic, black_box(&start), &opts))
        });
    }
    group.finish();
}

fn bench_lanes(c: &mut Criterion) {
    // The batched SoA distance kernel against its scalar reference, at the
    // shape the EvalPlan sweep feeds it (one anchor against a contiguous
    // peer-row block). The pairs are bitwise-equal by construction (pinned
    // in crates/space/tests/lane_properties.rs); the only question here is
    // speed, so read the trimmed/median columns, not the raw mean.
    let mut group = c.benchmark_group("dist_batch");
    let mut rng = ChaCha12Rng::seed_from_u64(9);
    for (dim, pairs) in [(2usize, 96usize), (8, 96)] {
        let a: Vec<f64> = (0..dim).map(|_| rng.gen_range(-200.0..200.0)).collect();
        let rows: Vec<f64> = (0..dim * pairs)
            .map(|_| rng.gen_range(-200.0..200.0))
            .collect();
        let mut out = vec![0.0; pairs];
        group.bench_function(format!("{dim}D_{pairs}pairs_dispatch"), |b| {
            b.iter(|| dist_batch(black_box(&a), black_box(&rows), &mut out))
        });
        let mut out_scalar = vec![0.0; pairs];
        group.bench_function(format!("{dim}D_{pairs}pairs_scalar"), |b| {
            b.iter(|| dist_batch_scalar(black_box(&a), black_box(&rows), &mut out_scalar))
        });
    }
    group.finish();
}

fn bench_eval_plan(c: &mut Criterion) {
    let seeds = SeedStream::new(3);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(400)).generate(&mut seeds.rng("topo"));
    let space = Space::Euclidean(2);
    let mut rng = seeds.rng("plan");
    let nodes: Vec<usize> = (0..400).collect();
    let plan = EvalPlan::with_params(&nodes, 128, 96, &mut rng);
    let coords: Vec<Coord> = (0..400)
        .map(|_| space.random_coord(150.0, &mut rng))
        .collect();
    c.bench_function("eval_plan_avg_error_400n_96peers", |b| {
        b.iter(|| plan.avg_error(black_box(&coords), &space, &matrix))
    });
    // The snapshot sweep pinned to one worker vs a small pool — the
    // deterministic-chunking parallel seam (VCOORD_THREADS) under test.
    c.bench_function("eval_plan_per_node_errors_400n_serial", |b| {
        b.iter(|| plan.per_node_errors_with(black_box(&coords), &space, &matrix, 1))
    });
    c.bench_function("eval_plan_per_node_errors_400n_4threads", |b| {
        b.iter(|| plan.per_node_errors_with(black_box(&coords), &space, &matrix, 4))
    });
}

fn bench_defense_inspect(c: &mut Criterion) {
    const REMOTES: usize = 16;
    let space = Space::Euclidean(2);
    let me = Coord::origin(2);
    let them = Coord::from_vec(vec![120.0, 50.0]);
    let sample = |remote: usize, round: u64| Update {
        observer: 0,
        remote,
        reported_coord: &them,
        reported_error: 0.3,
        rtt: 100.0,
        round,
        now_ms: round * 1000,
        provenance: Provenance::Normal,
    };
    let mut group = c.benchmark_group("defense_inspect");

    // The NoDefense fast path — with the zero-allocation contract asserted
    // over a tight manual loop (b.iter's own sample bookkeeping allocates,
    // so the assertion brackets a loop of pure inspections instead).
    let mut none = Defense::none();
    none.inspect(&space, &me, sample(1, 0));
    let before = allocations();
    let mut round = 0u64;
    for _ in 0..100_000 {
        round += 1;
        black_box(none.inspect(
            &space,
            &me,
            sample((round % REMOTES as u64) as usize, round),
        ));
    }
    let allocs = allocations() - before;
    assert_eq!(
        allocs, 0,
        "NoDefense fast path allocated {allocs} times over 100k samples — \
         the defended update loop must add zero allocation per round"
    );
    group.bench_function("no_defense", |b| {
        b.iter(|| {
            round += 1;
            none.inspect(
                &space,
                &me,
                sample((round % REMOTES as u64) as usize, round),
            )
        })
    });

    // Steady-state cost of real detectors: also asserted allocation-free
    // once warm-up has filled every history ring (a growing ring still
    // allocates — the bound derives from the ring depths).
    let warmup = ring_fill_samples(REMOTES);
    let mut drift = Defense::new(Box::new(DriftCap::new(1e12)));
    let mut mad = Defense::new(Box::new(ResidualOutlier::new(12, 1e12)));
    for r in 0..warmup {
        drift.inspect(&space, &me, sample((r % REMOTES as u64) as usize, r));
        mad.inspect(&space, &me, sample((r % REMOTES as u64) as usize, r));
    }
    let before = allocations();
    for r in warmup..warmup + 10_000 {
        black_box(drift.inspect(&space, &me, sample((r % REMOTES as u64) as usize, r)));
        black_box(mad.inspect(&space, &me, sample((r % REMOTES as u64) as usize, r)));
    }
    let allocs = allocations() - before;
    assert_eq!(
        allocs, 0,
        "warmed-up drift-cap/MAD inspection allocated {allocs} times over 10k samples"
    );
    // Each steady-state bench continues from its OWN warm-up round, not
    // the shared counter the no_defense bench has meanwhile advanced by
    // ~10⁸ iterations — jumping the round would make the first timed
    // iteration pay an enormous on_round catch-up loop.
    let mut drift_round = warmup + 10_000;
    group.bench_function("drift_cap_steady", |b| {
        b.iter(|| {
            drift_round += 1;
            drift.inspect(
                &space,
                &me,
                sample((drift_round % REMOTES as u64) as usize, drift_round),
            )
        })
    });
    let mut mad_round = warmup + 10_000;
    group.bench_function("mad_outlier_steady", |b| {
        b.iter(|| {
            mad_round += 1;
            mad.inspect(
                &space,
                &me,
                sample((mad_round % REMOTES as u64) as usize, mad_round),
            )
        })
    });
    group.finish();
}

fn bench_obs_disabled(c: &mut Criterion) {
    // The "zero-overhead-when-off" claim, measured: each disabled recording
    // call must cost one relaxed load and a branch. Run next to the kernels
    // above, any regression here shows up as a visible absolute floor.
    assert_eq!(vcoord::obs::mode(), vcoord::obs::ObsMode::Off);
    let counter = vcoord::obs::metric("bench.obs.counter");
    let hist = vcoord::obs::metric("bench.obs.hist");
    let mut group = c.benchmark_group("obs_disabled");
    group.bench_function("counter_add", |b| {
        b.iter(|| vcoord::obs::counter_add(black_box(counter), 1))
    });
    group.bench_function("observe", |b| {
        b.iter(|| vcoord::obs::observe(black_box(hist), 1.0))
    });
    group.bench_function("event", |b| {
        b.iter(|| vcoord::obs::event(black_box(counter), 1, 2, 3.0))
    });
    group.bench_function("span", |b| b.iter(|| vcoord::obs::span(black_box(hist))));
    group.finish();
}

fn bench_matrix_ops(c: &mut Criterion) {
    let seeds = SeedStream::new(4);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(400)).generate(&mut seeds.rng("topo"));
    c.bench_function("rtt_matrix_random_subset_100_of_400", |b| {
        let mut rng = seeds.rng("subset");
        b.iter(|| matrix.random_subset(100, &mut rng))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_vivaldi_update, bench_simplex, bench_lanes, bench_eval_plan, bench_defense_inspect, bench_obs_disabled, bench_matrix_ops
}
criterion_main!(benches);
