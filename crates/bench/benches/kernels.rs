//! Hot-path kernels: the per-event work of both simulators.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use vcoord::metrics::EvalPlan;
use vcoord::netsim::SeedStream;
use vcoord::space::{simplex_downhill, Coord, SimplexOptions, Space};
use vcoord::topo::{KingLike, KingLikeConfig};
use vcoord::vivaldi::node::vivaldi_update;

fn bench_vivaldi_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("vivaldi_update");
    for space in [
        Space::Euclidean(2),
        Space::Euclidean(5),
        Space::EuclideanHeight(2),
    ] {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut coord = space.random_coord(100.0, &mut rng);
        let mut error = 0.5;
        let remote = space.random_coord(100.0, &mut rng);
        group.bench_function(space.label(), |b| {
            b.iter(|| {
                vivaldi_update(
                    &space,
                    0.25,
                    (1e-6, 1e3),
                    black_box(&mut coord),
                    black_box(&mut error),
                    black_box(&remote),
                    0.3,
                    85.0,
                    &mut rng,
                )
            })
        });
    }
    group.finish();
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_downhill");
    for dim in [2usize, 8] {
        // A representative NPS positioning objective: 20 references.
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let space = Space::Euclidean(dim);
        let refs: Vec<(Coord, f64)> = (0..20)
            .map(|_| (space.random_coord(150.0, &mut rng), 80.0))
            .collect();
        let objective = |x: &[f64]| -> f64 {
            let p = Coord::from_vec(x.to_vec());
            refs.iter()
                .map(|(c, d)| {
                    let e = (space.distance(&p, c) - d) / d;
                    e * e
                })
                .sum()
        };
        let opts = SimplexOptions {
            max_iterations: 150,
            initial_step: 20.0,
            ..SimplexOptions::default()
        };
        let start = vec![1.0; dim];
        group.bench_function(format!("{dim}D_20refs"), |b| {
            b.iter(|| simplex_downhill(objective, black_box(&start), &opts))
        });
    }
    group.finish();
}

fn bench_eval_plan(c: &mut Criterion) {
    let seeds = SeedStream::new(3);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(400)).generate(&mut seeds.rng("topo"));
    let space = Space::Euclidean(2);
    let mut rng = seeds.rng("plan");
    let nodes: Vec<usize> = (0..400).collect();
    let plan = EvalPlan::with_params(&nodes, 128, 96, &mut rng);
    let coords: Vec<Coord> = (0..400)
        .map(|_| space.random_coord(150.0, &mut rng))
        .collect();
    c.bench_function("eval_plan_avg_error_400n_96peers", |b| {
        b.iter(|| plan.avg_error(black_box(&coords), &space, &matrix))
    });
}

fn bench_matrix_ops(c: &mut Criterion) {
    let seeds = SeedStream::new(4);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(400)).generate(&mut seeds.rng("topo"));
    c.bench_function("rtt_matrix_random_subset_100_of_400", |b| {
        let mut rng = seeds.rng("subset");
        b.iter(|| matrix.random_subset(100, &mut rng))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_vivaldi_update, bench_simplex, bench_eval_plan, bench_matrix_ops
}
criterion_main!(benches);
