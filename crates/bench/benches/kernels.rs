//! Hot-path kernels: the per-event work of both simulators.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use vcoord::metrics::EvalPlan;
use vcoord::netsim::SeedStream;
use vcoord::space::simplex::oracle::simplex_downhill_reference;
use vcoord::space::{simplex_downhill_scratch, Coord, SimplexScratch, Space};
use vcoord::topo::{KingLike, KingLikeConfig};
use vcoord::vivaldi::node::vivaldi_update;

fn bench_vivaldi_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("vivaldi_update");
    for space in [
        Space::Euclidean(2),
        Space::Euclidean(5),
        Space::EuclideanHeight(2),
    ] {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut coord = space.random_coord(100.0, &mut rng);
        let mut error = 0.5;
        let remote = space.random_coord(100.0, &mut rng);
        group.bench_function(space.label(), |b| {
            b.iter(|| {
                vivaldi_update(
                    &space,
                    0.25,
                    (1e-6, 1e3),
                    black_box(&mut coord),
                    black_box(&mut error),
                    black_box(&remote),
                    0.3,
                    85.0,
                    &mut rng,
                )
            })
        });
    }
    group.finish();
}

fn bench_simplex(c: &mut Criterion) {
    // Every id runs the allocation-free kernel and its retained allocating
    // oracle (`vcoord_space::simplex::oracle`) on the *same* objective, so
    // the pairs read directly as the kernel speedup. The 20-ref ids model a
    // realistic NPS positioning round (objective evaluation bounds the
    // gain); the quadratic id isolates pure kernel overhead, where the
    // ≥2×-over-oracle target is judged.
    let mut group = c.benchmark_group("simplex_downhill");
    let opts = vcoord_bench::simplex_bench_opts();
    for dim in [2usize, 8] {
        // The shared representative NPS positioning fixture (20 references;
        // see vcoord_bench::simplex_fixture — also used by bench-baseline).
        let (refs, opts, start) = vcoord_bench::simplex_fixture(dim);
        let objective = vcoord_bench::fit_objective(&refs);
        let mut scratch = SimplexScratch::new();
        group.bench_function(format!("{dim}D_20refs_kernel"), |b| {
            b.iter(|| simplex_downhill_scratch(&objective, black_box(&start), &opts, &mut scratch))
        });
        group.bench_function(format!("{dim}D_20refs_oracle"), |b| {
            b.iter(|| simplex_downhill_reference(&objective, black_box(&start), &opts))
        });
    }
    {
        let quadratic = |x: &[f64]| -> f64 { x.iter().map(|v| (v - 3.0) * (v - 3.0)).sum::<f64>() };
        let start = vec![1.0; 8];
        let mut scratch = SimplexScratch::new();
        group.bench_function("8D_quadratic_kernel", |b| {
            b.iter(|| simplex_downhill_scratch(quadratic, black_box(&start), &opts, &mut scratch))
        });
        group.bench_function("8D_quadratic_oracle", |b| {
            b.iter(|| simplex_downhill_reference(quadratic, black_box(&start), &opts))
        });
    }
    group.finish();
}

fn bench_eval_plan(c: &mut Criterion) {
    let seeds = SeedStream::new(3);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(400)).generate(&mut seeds.rng("topo"));
    let space = Space::Euclidean(2);
    let mut rng = seeds.rng("plan");
    let nodes: Vec<usize> = (0..400).collect();
    let plan = EvalPlan::with_params(&nodes, 128, 96, &mut rng);
    let coords: Vec<Coord> = (0..400)
        .map(|_| space.random_coord(150.0, &mut rng))
        .collect();
    c.bench_function("eval_plan_avg_error_400n_96peers", |b| {
        b.iter(|| plan.avg_error(black_box(&coords), &space, &matrix))
    });
    // The snapshot sweep pinned to one worker vs a small pool — the
    // deterministic-chunking parallel seam (VCOORD_THREADS) under test.
    c.bench_function("eval_plan_per_node_errors_400n_serial", |b| {
        b.iter(|| plan.per_node_errors_with(black_box(&coords), &space, &matrix, 1))
    });
    c.bench_function("eval_plan_per_node_errors_400n_4threads", |b| {
        b.iter(|| plan.per_node_errors_with(black_box(&coords), &space, &matrix, 4))
    });
}

fn bench_matrix_ops(c: &mut Criterion) {
    let seeds = SeedStream::new(4);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(400)).generate(&mut seeds.rng("topo"));
    c.bench_function("rtt_matrix_random_subset_100_of_400", |b| {
        let mut rng = seeds.rng("subset");
        b.iter(|| matrix.random_subset(100, &mut rng))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_vivaldi_update, bench_simplex, bench_eval_plan, bench_matrix_ops
}
criterion_main!(benches);
