//! End-to-end Vivaldi behaviour: clean convergence, attack impact, and the
//! paper's qualitative shape claims at small scale.

use vcoord::prelude::*;
use vcoord::vivaldi::ConvergenceTracker;

fn build(nodes: usize, seed: u64, space: Space) -> (VivaldiSim, SeedStream) {
    let seeds = SeedStream::new(seed);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(nodes)).generate(&mut seeds.rng("topo"));
    (
        VivaldiSim::new(matrix, VivaldiConfig::in_space(space), &seeds),
        seeds,
    )
}

#[test]
fn clean_system_converges_to_low_error() {
    let (mut sim, seeds) = build(120, 1, Space::Euclidean(2));
    let plan = EvalPlan::new(&sim.honest_nodes(), &mut seeds.rng("plan"));
    sim.run_ticks(300);
    let err = plan.avg_error(sim.coords(), sim.space(), sim.matrix());
    assert!(err < 0.45, "clean Vivaldi error too high: {err}");
}

#[test]
fn convergence_criterion_fires_on_clean_system() {
    // The paper's criterion (±0.02 held for 10 ticks by every node) is
    // tuned for 1740-node systems, where per-node error curves are smooth:
    // each node averages 64 springs drawn from 1739 candidates. At this
    // test's 80-node scale every node is a spring of every other and
    // per-node medians still breathe by ~0.1–0.2, so the band is widened
    // to ±0.25 while keeping the 10-tick hold; the paper-exact parameters
    // are covered by `ConvergenceTracker::paper` unit tests.
    let (mut sim, seeds) = build(80, 2, Space::Euclidean(2));
    let plan = EvalPlan::new(&sim.honest_nodes(), &mut seeds.rng("plan"));
    let mut tracker = ConvergenceTracker::new(plan.nodes().len(), 0.25, 10);
    let mut converged_at = None;
    for tick in 0..800 {
        sim.run_ticks(1);
        tracker.record(&plan.per_node_median_errors(sim.coords(), sim.space(), sim.matrix()));
        if tracker.converged() {
            converged_at = Some(tick);
            break;
        }
    }
    let at = converged_at.expect("clean system should stabilize per the tick criterion");
    assert!(at > 10, "cannot converge before the window fills");
}

#[test]
fn disorder_injection_degrades_then_more_attackers_degrade_more() {
    let (mut sim, seeds) = build(120, 3, Space::Euclidean(2));
    sim.run_ticks(250);
    let plan = EvalPlan::new(&sim.honest_nodes(), &mut seeds.rng("plan"));
    let clean = plan.avg_error(sim.coords(), sim.space(), sim.matrix());

    let run_attacked = |seed: u64, fraction: f64| -> f64 {
        let (mut sim, seeds) = build(120, seed, Space::Euclidean(2));
        sim.run_ticks(250);
        let attackers = sim.pick_attackers(fraction);
        sim.inject_adversary(&attackers, Box::new(VivaldiDisorder::default()));
        sim.run_ticks(150);
        let plan = EvalPlan::new(&sim.honest_nodes(), &mut seeds.rng("plan"));
        plan.avg_error(sim.coords(), sim.space(), sim.matrix())
    };
    let at10 = run_attacked(3, 0.10);
    let at50 = run_attacked(3, 0.50);
    assert!(
        at10 > 3.0 * clean,
        "10% disorder should hurt: {clean} -> {at10}"
    );
    assert!(
        at50 > at10,
        "more attackers must hurt more: {at10} vs {at50}"
    );
}

#[test]
fn larger_systems_resist_better() {
    // The paper's salient finding (figures 4/8/13): same attacker fraction,
    // larger group ⇒ smaller error.
    let run = |nodes: usize| -> f64 {
        let (mut sim, seeds) = build(nodes, 4, Space::Euclidean(2));
        sim.run_ticks(250);
        let attackers = sim.pick_attackers(0.30);
        sim.inject_adversary(&attackers, Box::new(VivaldiDisorder::default()));
        sim.run_ticks(150);
        let plan = EvalPlan::new(&sim.honest_nodes(), &mut seeds.rng("plan"));
        plan.avg_error(sim.coords(), sim.space(), sim.matrix())
    };
    let small = run(60);
    let large = run(240);
    assert!(
        large < small,
        "larger system should be more resilient: n=60 -> {small}, n=240 -> {large}"
    );
}

#[test]
fn repulsion_is_consistent_and_damaging() {
    let (mut sim, seeds) = build(120, 5, Space::Euclidean(2));
    sim.run_ticks(250);
    let plan = EvalPlan::new(&sim.honest_nodes(), &mut seeds.rng("plan"));
    let clean = plan.avg_error(sim.coords(), sim.space(), sim.matrix());
    let attackers = sim.pick_attackers(0.3);
    sim.inject_adversary(&attackers, Box::new(VivaldiRepulsion::default()));
    sim.run_ticks(150);
    let plan2 = EvalPlan::new(&sim.honest_nodes(), &mut seeds.rng("plan"));
    let attacked = plan2.avg_error(sim.coords(), sim.space(), sim.matrix());
    assert!(
        attacked > 5.0 * clean,
        "repulsion too weak: {clean} -> {attacked}"
    );
    // Attackers never shorten probes.
    assert_eq!(sim.counters().delay_clamped, 0, "threat-model violation");
}

#[test]
fn collusion_isolates_the_designated_target() {
    let (mut sim, seeds) = build(120, 6, Space::Euclidean(2));
    sim.run_ticks(250);
    let attackers = sim.pick_attackers(0.3);
    let victim = (0..120)
        .find(|v| !attackers.contains(v))
        .expect("honest node");
    sim.inject_adversary(
        &attackers,
        Box::new(VivaldiCollusionRepel::against(victim, 10_000.0)),
    );
    sim.run_ticks(200);
    let plan = EvalPlan::new(&sim.honest_nodes(), &mut seeds.rng("plan"));
    let errs = plan.per_node_errors(sim.coords(), sim.space(), sim.matrix());
    let victim_err = errs[plan
        .nodes()
        .iter()
        .position(|&n| n == victim)
        .expect("honest")];
    assert!(
        victim_err > 10.0,
        "designated target should be badly isolated: {victim_err}"
    );
}

#[test]
fn benign_faults_do_not_destroy_convergence() {
    // smoltcp-style fault injection must degrade gracefully, not break.
    let seeds = SeedStream::new(7);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(100)).generate(&mut seeds.rng("topo"));
    let config = VivaldiConfig {
        link: LinkModel {
            loss: 0.2,
            jitter_ms: 5.0,
        },
        ..VivaldiConfig::default()
    };
    let mut sim = VivaldiSim::new(matrix, config, &seeds);
    sim.run_ticks(300);
    let plan = EvalPlan::new(&sim.honest_nodes(), &mut seeds.rng("plan"));
    let err = plan.avg_error(sim.coords(), sim.space(), sim.matrix());
    assert!(
        err < 0.8,
        "20% loss + 5ms jitter should still converge: {err}"
    );
}

#[test]
fn height_model_space_also_converges() {
    let (mut sim, seeds) = build(100, 8, Space::EuclideanHeight(2));
    sim.run_ticks(300);
    let plan = EvalPlan::new(&sim.honest_nodes(), &mut seeds.rng("plan"));
    let err = plan.avg_error(sim.coords(), sim.space(), sim.matrix());
    assert!(err < 0.5, "height-model Vivaldi should converge: {err}");
    // Heights stay physical.
    assert!(sim.coords().iter().all(|c| c.height >= 0.0));
}
