//! Every figure runner executes end-to-end at smoke scale and produces a
//! structurally sound result (header/row arity, finite numbers where
//! expected, non-empty series).

use vcoord::experiments::{registry, Scale};

/// Vivaldi figures (fast at smoke scale) checked one by one; the NPS
/// figures are split across tests to keep wall-clock per test reasonable.
fn check(id: &str) {
    let scale = Scale::smoke();
    let fig = registry::run_figure(id, &scale, 1).unwrap_or_else(|| panic!("unknown id {id}"));
    assert_eq!(fig.id, id);
    assert!(!fig.columns.is_empty(), "{id}: no columns");
    assert!(!fig.rows.is_empty(), "{id}: no rows");
    for (r, row) in fig.rows.iter().enumerate() {
        assert_eq!(row.len(), fig.columns.len(), "{id}: row {r} arity mismatch");
    }
    // CSV renders and contains the header.
    let csv = fig.to_csv();
    assert!(csv.contains(&fig.columns.join(",")), "{id}: bad CSV header");
}

#[test]
fn vivaldi_time_series_figures() {
    for id in ["fig1", "fig9", "fig12"] {
        check(id);
    }
}

#[test]
fn vivaldi_cdf_figures() {
    for id in ["fig2", "fig5", "fig11"] {
        check(id);
    }
}

#[test]
fn vivaldi_sweep_figures() {
    for id in ["fig3", "fig4", "fig6"] {
        check(id);
    }
}

#[test]
fn vivaldi_subset_size_and_target_figures() {
    for id in ["fig7", "fig8", "fig10", "fig13"] {
        check(id);
    }
}

#[test]
fn nps_disorder_figures() {
    for id in ["fig14", "fig15"] {
        check(id);
    }
}

#[test]
fn nps_dimension_figure() {
    check("fig16");
}

#[test]
fn nps_geometry_diagram_figure() {
    check("fig17");
}

#[test]
fn nps_anti_detection_figures() {
    for id in ["fig18", "fig19"] {
        check(id);
    }
}

#[test]
fn nps_filter_ledger_figures() {
    for id in ["fig20", "fig22"] {
        check(id);
    }
}

#[test]
fn nps_sophisticated_cdf_figure() {
    check("fig21");
}

#[test]
fn nps_collusion_figures() {
    for id in ["fig23", "fig24"] {
        check(id);
    }
}

#[test]
fn nps_propagation_and_combined_figures() {
    for id in ["fig25", "fig26"] {
        check(id);
    }
}
