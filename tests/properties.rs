//! Property-based tests over the workspace's core invariants.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use vcoord::metrics::{relative_error, Cdf, EvalPlan};
use vcoord::netsim::SeedStream;
use vcoord::nps::{NpsConfig, NpsSim, PositioningMode};
use vcoord::space::{simplex_downhill, Coord, ResumePolicy, SimplexOptions, Space};
use vcoord::topo::{KingLike, KingLikeConfig, RttMatrix};
use vcoord::vivaldi::node::vivaldi_update;

fn coord_strategy(dim: usize) -> impl Strategy<Value = Coord> {
    (prop::collection::vec(-1.0e4f64..1.0e4, dim), 0.0f64..1.0e3)
        .prop_map(|(vec, height)| Coord { vec, height })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- Space axioms -------------------------------------------------

    #[test]
    fn euclidean_distance_symmetry_and_identity(
        a in coord_strategy(3), b in coord_strategy(3)
    ) {
        let s = Space::Euclidean(3);
        let dab = s.distance(&a, &b);
        let dba = s.distance(&b, &a);
        prop_assert!((dab - dba).abs() < 1e-9);
        prop_assert!(dab >= 0.0);
        prop_assert!(s.distance(&a, &a) < 1e-9);
    }

    #[test]
    fn euclidean_triangle_inequality(
        a in coord_strategy(3), b in coord_strategy(3), c in coord_strategy(3)
    ) {
        let s = Space::Euclidean(3);
        prop_assert!(s.distance(&a, &c) <= s.distance(&a, &b) + s.distance(&b, &c) + 1e-6);
    }

    #[test]
    fn height_model_distance_exceeds_euclidean_part(
        a in coord_strategy(2), b in coord_strategy(2)
    ) {
        let he = Space::EuclideanHeight(2);
        let eu = Space::Euclidean(2);
        prop_assert!(he.distance(&a, &b) + 1e-12 >= eu.distance(&a, &b));
        // Height model also satisfies the triangle inequality.
        prop_assert!(he.distance(&a, &b) >= a.height + b.height);
    }

    #[test]
    fn directions_are_unit_norm(a in coord_strategy(4), b in coord_strategy(4)) {
        let s = Space::Euclidean(4);
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let u = s.direction(&a, &b, &mut rng);
        prop_assert!((u.norm() - 1.0).abs() < 1e-9);
    }

    // ---- Relative error ------------------------------------------------

    #[test]
    fn relative_error_is_symmetric_and_nonnegative(
        a in 0.001f64..1e5, b in 0.001f64..1e5
    ) {
        let e1 = relative_error(a, b);
        let e2 = relative_error(b, a);
        prop_assert!((e1 - e2).abs() < 1e-9, "min() makes it symmetric");
        prop_assert!(e1 >= 0.0);
        prop_assert!((relative_error(a, a)).abs() < 1e-12);
    }

    // ---- Vivaldi update ------------------------------------------------

    #[test]
    fn vivaldi_update_never_corrupts_state(
        cx in coord_strategy(2),
        remote in coord_strategy(2),
        error in 0.0f64..10.0,
        remote_error in -5.0f64..1e4,
        rtt in prop::num::f64::ANY,
    ) {
        // Whatever garbage arrives (NaN rtt, negative remote error, huge
        // values), local state stays finite.
        let space = Space::Euclidean(2);
        let mut c = cx.clone();
        let mut e = error;
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let _ = vivaldi_update(
            &space, 0.25, (1e-6, 1e3), &mut c, &mut e, &remote, remote_error, rtt, &mut rng,
        );
        prop_assert!(c.is_finite());
        prop_assert!(e.is_finite() && e >= 0.0);
    }

    #[test]
    fn vivaldi_update_moves_toward_spring_equilibrium(
        x in 10.0f64..500.0, rtt in 1.0f64..1000.0
    ) {
        // One update from distance x with measured rtt strictly reduces the
        // spring displacement |dist - rtt| (weight > 0 guaranteed).
        let space = Space::Euclidean(2);
        let mut c = Coord::from_vec(vec![x, 0.0]);
        let mut e = 1.0;
        let remote = Coord::origin(2);
        let before = (x - rtt).abs();
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        vivaldi_update(&space, 0.25, (1e-6, 1e3), &mut c, &mut e, &remote, 0.5, rtt, &mut rng)
            .expect("valid sample");
        let after = (space.distance(&c, &remote) - rtt).abs();
        prop_assert!(after <= before + 1e-9, "{before} -> {after}");
    }

    // ---- Simplex Downhill ----------------------------------------------

    #[test]
    fn simplex_never_returns_worse_than_start(
        x0 in prop::collection::vec(-100.0f64..100.0, 2..6),
        shift in prop::collection::vec(-50.0f64..50.0, 6),
    ) {
        let f = move |x: &[f64]| -> f64 {
            x.iter().zip(&shift).map(|(v, s)| (v - s) * (v - s)).sum()
        };
        let start_value = f(&x0);
        let r = simplex_downhill(&f, &x0, &SimplexOptions::default());
        prop_assert!(r.value <= start_value + 1e-9);
        prop_assert!(r.point.iter().all(|v| v.is_finite()));
    }

    // ---- CDF ------------------------------------------------------------

    #[test]
    fn cdf_quantiles_are_monotone(samples in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let cdf = Cdf::from_samples(&samples);
        let mut prev = f64::NEG_INFINITY;
        for k in 0..=20 {
            let q = cdf.quantile(k as f64 / 20.0);
            prop_assert!(q >= prev);
            prev = q;
        }
        prop_assert_eq!(cdf.fraction_below(f64::MAX), 1.0);
    }

    // ---- Topology -------------------------------------------------------

    #[test]
    fn synthesized_topologies_are_valid_at_any_size(n in 2usize..40, seed in 0u64..500) {
        let m = KingLike::new(KingLikeConfig::with_nodes(n))
            .generate(&mut ChaCha12Rng::seed_from_u64(seed));
        prop_assert!(m.validate().is_ok());
        prop_assert!(m.min_rtt().map_or(true, |v| v >= 1.0));
    }

    #[test]
    fn subsets_preserve_symmetry_and_entries(seed in 0u64..200, k in 2usize..20) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let m = KingLike::new(KingLikeConfig::with_nodes(30)).generate(&mut rng);
        let s = m.random_subset(k, &mut rng);
        prop_assert_eq!(s.len(), k.min(30));
        prop_assert!(s.validate().is_ok());
    }

    #[test]
    fn matrix_set_get_roundtrip(
        n in 2usize..12,
        entries in prop::collection::vec((0usize..12, 0usize..12, 0.0f64..1e4), 0..40)
    ) {
        let mut m = RttMatrix::zeros(n);
        for (i, j, v) in entries {
            let (i, j) = (i % n, j % n);
            m.set(i, j, v);
            if i != j {
                prop_assert_eq!(m.rtt(i, j), v);
                prop_assert_eq!(m.rtt(j, i), v);
            } else {
                prop_assert_eq!(m.rtt(i, j), 0.0);
            }
        }
        prop_assert!(m.validate().is_ok());
    }
}

// ---- NPS warm-start positioning (whole-simulation level) ---------------
//
// Each case runs full NPS simulations, so this block keeps its own lower
// case count (VCOORD_PROPTEST_CASES still scales it proportionally in the
// elevated CI pass).

fn nps_sim(seed: u64, mode: PositioningMode) -> NpsSim {
    let seeds = SeedStream::new(seed);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(64)).generate(&mut seeds.rng("topo"));
    let config = NpsConfig {
        landmarks: 10,
        refs_per_node: 10,
        space: Space::Euclidean(3),
        positioning: mode,
        ..NpsConfig::default()
    };
    NpsSim::new(matrix, config, &seeds)
}

fn coord_bits(coords: &[Coord]) -> Vec<(Vec<u64>, u64)> {
    coords
        .iter()
        .map(|c| {
            (
                c.vec.iter().map(|v| v.to_bits()).collect(),
                c.height.to_bits(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Strict mode is property-pinned bitwise-identical to a cold-restart
    /// resume policy: however the other `ResumePolicy` knobs are set,
    /// `cold_every == 1` must make the whole simulation — every coordinate
    /// bit and every counter, objective evaluations included — match the
    /// default `Strict` run.
    #[test]
    fn cold_only_warm_policy_is_bitwise_identical_to_strict(
        seed in 0u64..10_000,
        damping in 0.0f64..0.5,
        min_extent in 0.0f64..2.0,
    ) {
        let mut strict = nps_sim(seed, PositioningMode::Strict);
        strict.run_ms(600_000);
        let cold_only = PositioningMode::Warm(ResumePolicy {
            damping,
            min_extent,
            cold_every: 1,
        });
        let mut warm = nps_sim(seed, cold_only);
        warm.run_ms(600_000);
        prop_assert_eq!(coord_bits(strict.coords()), coord_bits(warm.coords()));
        prop_assert_eq!(strict.counters(), warm.counters());
    }

    /// Fast mode on whole simulations: after the join transient, warm
    /// positioning spends materially fewer objective evaluations per round
    /// while embedding no worse (within a small additive slack) — across
    /// seeds, not just the calibrated unit-test one.
    #[test]
    fn warm_positioning_saves_evals_without_losing_accuracy(seed in 0u64..10_000) {
        let run = |mode: PositioningMode| {
            let mut sim = nps_sim(seed, mode);
            sim.run_ms(1_200_000);
            let warmed = sim.counters();
            sim.run_ms(1_200_000);
            let c = sim.counters();
            let plan = EvalPlan::new(
                &sim.eval_nodes(),
                &mut SeedStream::new(7).rng("plan"),
            );
            let err = plan.avg_error(sim.coords(), sim.space(), sim.matrix());
            (
                c.objective_evals - warmed.objective_evals,
                c.positionings - warmed.positionings,
                err,
            )
        };
        let (strict_evals, strict_rounds, strict_err) = run(PositioningMode::Strict);
        let (warm_evals, warm_rounds, warm_err) =
            run(PositioningMode::Warm(ResumePolicy::default_warm()));
        // Round counts can differ slightly between modes: the security
        // filter sees the modes' (legitimately) different converged
        // coordinates, so ban/replacement RNG draws diverge. Compare
        // per-round means, not totals.
        prop_assert!(strict_rounds > 0 && warm_rounds > 0);
        let strict_mean = strict_evals as f64 / strict_rounds as f64;
        let warm_mean = warm_evals as f64 / warm_rounds as f64;
        // ≥ 25 % saved per round at any seed (the calibrated ≥ 2× is
        // pinned in the vcoord-nps sim test and evidenced in
        // BENCH_quick.json).
        prop_assert!(
            warm_mean * 4.0 <= strict_mean * 3.0,
            "warm {} vs strict {} evals/round",
            warm_mean,
            strict_mean
        );
        prop_assert!(
            warm_err < strict_err + 0.1,
            "warm error {} vs strict {}",
            warm_err,
            strict_err
        );
    }
}
