//! The fault-injection layer is numerics-inert when empty: a simulation
//! with an **empty** [`ChaosPlan`] installed produces bit-for-bit
//! identical coordinates and tallies to one with no chaos at all, for
//! both systems under test — attacked and defended, so the check covers
//! the full probe path the chaos hooks thread through. Property-tested
//! over seeds.
//!
//! This is the contract that lets `chaos` ship compiled into every build:
//! the 39 pre-chaos golden figures stay byte-identical because an absent
//! (or empty) plan draws no randomness and perturbs no arithmetic.

use proptest::prelude::*;
use vcoord::prelude::*;

/// Everything a run computed, in exactly comparable form.
#[derive(Debug, PartialEq, Eq)]
struct RunFingerprint {
    coord_bits: Vec<u64>,
    accepted: u64,
    rejected: u64,
}

fn vivaldi_run(seed: u64, empty_plan: bool) -> RunFingerprint {
    let seeds = SeedStream::new(seed);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(48)).generate(&mut seeds.rng("topo"));
    let mut sim = VivaldiSim::new(matrix, VivaldiConfig::default(), &seeds);
    sim.run_ticks(120);
    let attackers = sim.pick_attackers(0.25);
    sim.inject_adversary(&attackers, Box::new(VivaldiDisorder::default()));
    sim.deploy_defense(Box::new(DriftCap::new(40.0)));
    if empty_plan {
        sim.install_chaos(ChaosPlan::none());
    }
    sim.run_ticks(80);
    let stats = sim.defense_stats().expect("defense deployed");
    if empty_plan {
        assert_eq!(
            *sim.chaos_counters().expect("plan installed"),
            ChaosCounters::default(),
            "an empty plan must inject nothing"
        );
    }
    RunFingerprint {
        coord_bits: sim
            .coords()
            .iter()
            .flat_map(|c| c.vec.iter().map(|v| v.to_bits()))
            .collect(),
        accepted: stats.accepted,
        rejected: stats.rejected,
    }
}

fn nps_run(seed: u64, empty_plan: bool) -> RunFingerprint {
    let seeds = SeedStream::new(seed);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(40)).generate(&mut seeds.rng("topo"));
    // Probation on and a *decaying* cap: the inertness sweep then walks
    // the whole lease machinery (the probation round-robin's skip-leased
    // scan, the provenance tag in `probe_ref`, the relief valve's gate) —
    // every seam must still be bit-dead with an empty plan installed.
    let config = NpsConfig {
        probation_every: 2,
        ..NpsConfig::default()
    };
    let mut sim = NpsSim::new(matrix, config, &seeds);
    sim.run_ms(600_000);
    let attackers = sim.pick_attackers(0.25);
    sim.inject_adversary(&attackers, Box::new(NpsSimpleDisorder::default()));
    sim.deploy_defense(Box::new(DriftCap::with_decay(40.0, DriftDecay::new(5.0))));
    if empty_plan {
        sim.install_chaos(ChaosPlan::none());
    }
    sim.run_ms(600_000);
    if empty_plan {
        assert_eq!(
            *sim.chaos_counters().expect("plan installed"),
            ChaosCounters::default(),
            "an empty plan must inject nothing"
        );
    }
    RunFingerprint {
        coord_bits: sim
            .coords()
            .iter()
            .flat_map(|c| c.vec.iter().map(|v| v.to_bits()))
            .collect(),
        accepted: sim.counters().positionings,
        rejected: sim.ledger().total(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn empty_chaos_plan_is_bitwise_inert(seed in 0u64..1000) {
        let plain = vivaldi_run(seed, false);
        let chaotic = vivaldi_run(seed, true);
        prop_assert_eq!(&plain, &chaotic, "an empty plan perturbed the Vivaldi run");

        let plain = nps_run(seed, false);
        let chaotic = nps_run(seed, true);
        prop_assert_eq!(&plain, &chaotic, "an empty plan perturbed the NPS run");
    }
}
