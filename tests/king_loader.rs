//! Round-trip the real-data loaders: write King-format files, load them,
//! validate, sub-sample, and feed them into a simulation.

use std::io::Write;
use vcoord::prelude::*;
use vcoord::topo::king::{load_file, RttUnit};

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("vcoord-test-{name}-{}", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(contents.as_bytes()).expect("write temp file");
    path
}

#[test]
fn triple_format_roundtrip() {
    // Emulate the p2psim king.matrix format: 1-based ids, microseconds.
    let seeds = SeedStream::new(1);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(30)).generate(&mut seeds.rng("topo"));
    let mut text = String::from("# synthetic king-format file\n");
    for (i, j, v) in matrix.pairs() {
        text.push_str(&format!("{} {} {:.0}\n", i + 1, j + 1, v * 1000.0));
    }
    let path = write_temp("triples", &text);
    let loaded = load_file(&path, RttUnit::Micros).expect("load");
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.len(), 30);
    loaded.validate().expect("valid");
    // Values survive within rounding (1 µs).
    for (i, j, v) in matrix.pairs() {
        assert!((loaded.rtt(i, j) - v).abs() < 0.01, "pair ({i},{j})");
    }
}

#[test]
fn matrix_format_roundtrip() {
    let seeds = SeedStream::new(2);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(12)).generate(&mut seeds.rng("topo"));
    let mut text = String::new();
    for i in 0..12 {
        let row: Vec<String> = (0..12)
            .map(|j| format!("{:.3}", matrix.rtt(i, j)))
            .collect();
        text.push_str(&row.join(" "));
        text.push('\n');
    }
    let path = write_temp("matrix", &text);
    let loaded = load_file(&path, RttUnit::Millis).expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.len(), 12);
    for (i, j, v) in matrix.pairs() {
        assert!((loaded.rtt(i, j) - v).abs() < 0.01);
    }
}

#[test]
fn loaded_matrix_drives_a_simulation() {
    // The documented workflow: load real data, sub-sample a group, run.
    let seeds = SeedStream::new(3);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(60)).generate(&mut seeds.rng("topo"));
    let mut text = String::new();
    for (i, j, v) in matrix.pairs() {
        text.push_str(&format!("{i} {j} {v}\n"));
    }
    let path = write_temp("sim", &text);
    let loaded = load_file(&path, RttUnit::Millis).expect("load");
    std::fs::remove_file(&path).ok();

    let group = loaded.random_subset(40, &mut seeds.rng("group"));
    let mut sim = VivaldiSim::new(group, VivaldiConfig::default(), &seeds);
    sim.run_ticks(150);
    let plan = EvalPlan::new(&sim.honest_nodes(), &mut seeds.rng("plan"));
    let err = plan.avg_error(sim.coords(), sim.space(), sim.matrix());
    assert!(
        err < 0.7,
        "simulation on loaded data should converge: {err}"
    );
}

#[test]
fn loader_rejects_malformed_input() {
    let path = write_temp("bad", "0 1 abc\n");
    assert!(load_file(&path, RttUnit::Millis).is_err());
    std::fs::remove_file(&path).ok();

    let path = write_temp("empty", "# nothing here\n");
    assert!(load_file(&path, RttUnit::Millis).is_err());
    std::fs::remove_file(&path).ok();
}
