//! Property pins for the HDR histogram layer under `vcoord::obs`: the
//! log-bucketed geometry must hold its advertised resolution across the
//! full u64 magnitude range, and the quantiles extracted from bucketed
//! counts must stay within one bucket width of the exact nearest-rank
//! sample — the error bound `obs-diff` tolerances and the trace-schema
//! quantile fields are designed around.

use proptest::prelude::*;
use vcoord::obs::hdr;
use vcoord::obs::HistData;

/// One value drawn log-uniformly: pick a magnitude (bit position), then a
/// uniform offset inside that power-of-two band. Exercises every bucket
/// major instead of clustering at u64::MAX like a uniform draw would.
fn log_uniform() -> impl Strategy<Value = u64> {
    (0u32..63, 0u64..u64::MAX).prop_map(|(e, m)| {
        let lo = 1u64 << e;
        lo + m % lo // in [2^e, 2^{e+1})
    })
}

/// Exact nearest-rank quantile of a sorted sample set (the definition the
/// bucketed estimate approximates).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let target = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(target - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ---- Bucket geometry ------------------------------------------------

    #[test]
    fn every_value_lands_in_its_bucket(v in 0u64..u64::MAX) {
        let idx = hdr::index_of(v);
        prop_assert!(idx < hdr::BUCKET_COUNT);
        let (lo, hi) = hdr::bounds_of(idx);
        prop_assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}] (bucket {idx})");
    }

    #[test]
    fn bucket_width_is_bounded_relative(v in log_uniform()) {
        // The advertised resolution: for values past the exact range the
        // bucket holding `v` is never wider than v / 2^(SUB_BITS - 1), so
        // any in-bucket point is within ~2^-5 relative error of any other.
        let w = hdr::width_of(v);
        if v < hdr::SUB_BUCKETS {
            prop_assert_eq!(w, 1, "values below {} are exact", hdr::SUB_BUCKETS);
        } else {
            prop_assert!(
                (w as f64) / (v as f64) <= 1.0 / (hdr::SUB_BUCKETS as f64 / 2.0),
                "bucket width {w} too wide for value {v}"
            );
        }
    }

    // ---- Quantile error bound -------------------------------------------

    #[test]
    fn bucketed_quantile_within_one_bucket_width(
        values in prop::collection::vec(log_uniform(), 1..200),
        q in 0.0f64..=1.0,
    ) {
        let mut buckets = vec![0u64; hdr::BUCKET_COUNT];
        for &v in &values {
            buckets[hdr::index_of(v)] += 1;
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let est = hdr::quantile_from_buckets(&buckets, values.len() as u64, q);
        // The estimate is the midpoint of the bucket holding the exact
        // nearest-rank sample, so it can miss by at most that bucket's
        // width (f64 rounding of huge u64s is far below bucket width at
        // every magnitude; 1.0 covers the exact-value range).
        let width = hdr::width_of(exact) as f64;
        prop_assert!(
            (est - exact as f64).abs() <= width.max(1.0),
            "q={q}: estimate {est} vs exact {exact} (bucket width {width})"
        );
    }

    #[test]
    fn gated_hist_quantiles_hold_the_same_bound(
        values in prop::collection::vec(0.0f64..1.0e9, 1..200),
        q in 0.0f64..=1.0,
    ) {
        // Same bound through the gated-plane recording path: f64 samples
        // truncate to u64 on record (±1), then bucket as above.
        let mut h = HistData::default();
        for &v in &values {
            h.record(v);
        }
        let mut sorted: Vec<u64> = values.iter().map(|&v| v as u64).collect();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let est = h.quantile(q);
        let width = hdr::width_of(exact) as f64;
        prop_assert!(
            (est - exact as f64).abs() <= width.max(1.0) + 1.0,
            "q={q}: estimate {est} vs exact {exact} (bucket width {width})"
        );
    }

    #[test]
    fn merged_hists_quantile_like_the_union(
        a in prop::collection::vec(0.0f64..1.0e6, 1..100),
        b in prop::collection::vec(0.0f64..1.0e6, 1..100),
    ) {
        // Merging two gated histograms must yield exactly the quantiles of
        // recording the union into one — merge is bucket-wise addition, so
        // the estimates agree to the bit, not just within tolerance.
        let mut ha = HistData::default();
        let mut hb = HistData::default();
        let mut hu = HistData::default();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        ha.merge(&hb);
        for &q in &[0.5, 0.9, 0.95, 0.99] {
            prop_assert_eq!(ha.quantile(q).to_bits(), hu.quantile(q).to_bits());
        }
    }
}
