//! End-to-end NPS behaviour: hierarchy convergence, the security filter's
//! value against simple disorder, and the anti-detection loopholes.

use vcoord::knowledge::Knowledge;
use vcoord::prelude::*;

fn build(nodes: usize, seed: u64, config: NpsConfig) -> (NpsSim, SeedStream) {
    let seeds = SeedStream::new(seed);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(nodes)).generate(&mut seeds.rng("topo"));
    (NpsSim::new(matrix, config, &seeds), seeds)
}

fn avg_error(sim: &NpsSim, seeds: &SeedStream) -> f64 {
    let plan = EvalPlan::new(&sim.eval_nodes(), &mut seeds.rng("plan"));
    plan.avg_error(sim.coords(), sim.space(), sim.matrix())
}

#[test]
fn hierarchy_converges_cleanly() {
    let (mut sim, seeds) = build(250, 1, NpsConfig::default());
    sim.run_rounds(25);
    let err = avg_error(&sim, &seeds);
    assert!(err < 0.6, "clean NPS error too high: {err}");
    assert!(
        sim.eval_nodes().len() > 200,
        "most nodes should be positioned"
    );
}

#[test]
fn four_layer_hierarchy_also_converges() {
    let (mut sim, seeds) = build(250, 2, NpsConfig::with_layers(4));
    sim.run_rounds(30);
    let err = avg_error(&sim, &seeds);
    assert!(err < 0.8, "clean 4-layer NPS error too high: {err}");
    for l in 1..=3u8 {
        assert!(
            !sim.eval_nodes_in_layer(l).is_empty(),
            "layer {l} must be populated"
        );
    }
}

#[test]
fn security_filter_mitigates_low_fraction_disorder() {
    // Figure 14's protective regime: at 10% simple disorder, security-on
    // must end up meaningfully better than security-off.
    let run = |security: bool| -> f64 {
        let config = NpsConfig {
            security,
            ..NpsConfig::default()
        };
        let (mut sim, seeds) = build(250, 3, config);
        sim.run_rounds(25);
        let attackers = sim.pick_attackers(0.10);
        sim.inject_adversary(&attackers, Box::new(NpsSimpleDisorder::default()));
        sim.run_rounds(40);
        avg_error(&sim, &seeds)
    };
    let with_security = run(true);
    let without = run(false);
    assert!(
        with_security < 0.75 * without,
        "filter should mitigate 10% disorder: on={with_security} off={without}"
    );
}

#[test]
fn heavy_disorder_defeats_the_filter() {
    // Figure 14's breakdown regime: at 50% the filter no longer saves the
    // system (median skew) — errors blow up regardless.
    let config = NpsConfig {
        security: true,
        ..NpsConfig::default()
    };
    let (mut sim, seeds) = build(250, 4, config);
    sim.run_rounds(25);
    let clean = avg_error(&sim, &seeds);
    let attackers = sim.pick_attackers(0.50);
    sim.inject_adversary(&attackers, Box::new(NpsSimpleDisorder::default()));
    sim.run_rounds(40);
    let attacked = avg_error(&sim, &seeds);
    assert!(
        attacked > 4.0 * clean,
        "50% disorder must defeat the filter: {clean} -> {attacked}"
    );
}

#[test]
fn filter_catches_disorder_but_not_oracle_anti_detection() {
    // The core of figures 18/20/22: inconsistent delayers are filterable;
    // consistent anti-detection lies from knowing attackers are not.
    let run = |adversary: Box<dyn vcoord::attackkit::AttackStrategy>| -> (f64, u64, u64) {
        let (mut sim, _seeds) = build(250, 5, NpsConfig::default());
        sim.run_rounds(25);
        let before = sim.ledger();
        let attackers = sim.pick_attackers(0.20);
        sim.inject_adversary(&attackers, adversary);
        sim.run_rounds(40);
        let after = sim.ledger();
        (
            after
                .filtered_malicious
                .saturating_sub(before.filtered_malicious) as f64,
            after.filtered_malicious - before.filtered_malicious,
            after.filtered_honest - before.filtered_honest,
        )
    };
    let (_, disorder_caught, _) = run(Box::<NpsSimpleDisorder>::default());
    let (_, oracle_caught, _) = run(Box::new(NpsAntiDetection::naive(Knowledge::Oracle)));
    assert!(
        disorder_caught > 5 * oracle_caught.max(1),
        "oracle anti-detection must evade the filter: disorder {disorder_caught} vs oracle {oracle_caught}"
    );
}

#[test]
fn sophisticated_attack_avoids_threshold_bans() {
    let run = |sophisticated: bool| -> u64 {
        let adv = if sophisticated {
            NpsAntiDetection::sophisticated(Knowledge::half())
        } else {
            NpsAntiDetection::naive(Knowledge::half())
        };
        let (mut sim, _seeds) = build(250, 6, NpsConfig::default());
        sim.run_rounds(25);
        let attackers = sim.pick_attackers(0.20);
        sim.inject_adversary(&attackers, Box::new(adv));
        sim.run_rounds(40);
        sim.threshold_ledger().total()
    };
    let naive_bans = run(false);
    let sophisticated_bans = run(true);
    assert!(
        naive_bans > 10 * sophisticated_bans.max(1),
        "sophistication must evade the probe threshold: naive {naive_bans} vs sophisticated {sophisticated_bans}"
    );
}

#[test]
fn collusion_activates_and_hits_designated_victims_hardest() {
    let (mut sim, seeds) = build(250, 7, NpsConfig::default());
    sim.run_rounds(25);
    let attackers = sim.pick_attackers(0.30);
    // Preset victims so we can measure them.
    let victims: Vec<usize> = (0..250)
        .filter(|i| sim.layers_of()[*i] == 2 && !attackers.contains(i))
        .take(20)
        .collect();
    let mut adv = NpsCollusionIsolation::new(0.2);
    adv.preset_victims(victims.iter().copied().collect());
    sim.inject_adversary(&attackers, Box::new(adv));
    sim.run_rounds(40);

    let plan = EvalPlan::new(&sim.eval_nodes(), &mut seeds.rng("plan"));
    let errs = plan.per_node_errors(sim.coords(), sim.space(), sim.matrix());
    let (mut victim_sum, mut victim_n, mut other_sum, mut other_n) = (0.0, 0, 0.0, 0);
    for (k, &node) in plan.nodes().iter().enumerate() {
        if victims.contains(&node) {
            victim_sum += errs[k];
            victim_n += 1;
        } else {
            other_sum += errs[k];
            other_n += 1;
        }
    }
    let victim_avg = victim_sum / victim_n.max(1) as f64;
    let other_avg = other_sum / other_n.max(1) as f64;
    assert!(
        victim_avg > 3.0 * other_avg,
        "designated victims should fare much worse: victims {victim_avg} vs others {other_avg}"
    );
}

#[test]
fn no_attacker_ever_shortens_a_probe() {
    let (mut sim, _seeds) = build(200, 8, NpsConfig::default());
    sim.run_rounds(20);
    let attackers = sim.pick_attackers(0.30);
    sim.inject_adversary(
        &attackers,
        Box::new(NpsCombined::new(Knowledge::half(), 0.2)),
    );
    sim.run_rounds(30);
    assert_eq!(
        sim.counters().delay_clamped,
        0,
        "attack strategies must respect the delay-only threat model"
    );
}
