//! Reproducibility: every figure and simulation replays byte-identically
//! from a master seed.

use vcoord::experiments::{registry, Scale};
use vcoord::prelude::*;

#[test]
fn vivaldi_simulation_replays_identically() {
    let run = |seed: u64| -> Vec<Coord> {
        let seeds = SeedStream::new(seed);
        let matrix = KingLike::new(KingLikeConfig::with_nodes(80)).generate(&mut seeds.rng("topo"));
        let mut sim = VivaldiSim::new(matrix, VivaldiConfig::default(), &seeds);
        sim.run_ticks(100);
        let attackers = sim.pick_attackers(0.2);
        sim.inject_adversary(&attackers, Box::new(VivaldiDisorder::default()));
        sim.run_ticks(60);
        sim.coords().to_vec()
    };
    assert_eq!(run(11), run(11));
    assert_ne!(run(11), run(12));
}

#[test]
fn nps_simulation_replays_identically() {
    let run = |seed: u64| -> Vec<Coord> {
        let seeds = SeedStream::new(seed);
        let matrix =
            KingLike::new(KingLikeConfig::with_nodes(120)).generate(&mut seeds.rng("topo"));
        let mut sim = NpsSim::new(matrix, NpsConfig::default(), &seeds);
        sim.run_rounds(12);
        let attackers = sim.pick_attackers(0.2);
        sim.inject_adversary(&attackers, Box::new(NpsSimpleDisorder::default()));
        sim.run_rounds(10);
        sim.coords().to_vec()
    };
    assert_eq!(run(21), run(21));
    assert_ne!(run(21), run(22));
}

#[test]
fn figure_csv_is_seed_deterministic() {
    let scale = Scale::smoke();
    let a = registry::run_figure("fig1", &scale, 5)
        .expect("known id")
        .to_csv();
    let b = registry::run_figure("fig1", &scale, 5)
        .expect("known id")
        .to_csv();
    assert_eq!(a, b, "same seed must reproduce the CSV byte-for-byte");
    let c = registry::run_figure("fig1", &scale, 6)
        .expect("known id")
        .to_csv();
    assert_ne!(a, c, "different seeds must differ");
}

#[test]
fn parallel_repetitions_do_not_perturb_determinism() {
    // run_repetitions executes on threads; results must not depend on
    // scheduling.
    let scale = Scale::smoke();
    let a = registry::run_figure("fig12", &scale, 9)
        .expect("known id")
        .to_csv();
    let b = registry::run_figure("fig12", &scale, 9)
        .expect("known id")
        .to_csv();
    assert_eq!(a, b);
}
