//! The tracing layer is numerics-inert: an attacked **and** defended
//! simulation produces bit-for-bit identical coordinates and defense
//! tallies whether the `vcoord-obs` plane is `Off` or fully `Trace`-ing.
//! Property-tested over seeds for both systems under test.
//!
//! The obs mode is process-global, so this binary holds exactly one
//! `#[test]` (proptest runs its cases sequentially inside it) — a sibling
//! test flipping the mode on another libtest thread would race.

use proptest::prelude::*;
use vcoord::obs;
use vcoord::prelude::*;

/// Coordinate bit-patterns plus defense tallies: everything the run
/// computed, in exactly comparable form.
#[derive(Debug, PartialEq, Eq)]
struct RunFingerprint {
    coord_bits: Vec<u64>,
    accepted: u64,
    rejected: u64,
}

fn vivaldi_run(seed: u64) -> RunFingerprint {
    let seeds = SeedStream::new(seed);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(48)).generate(&mut seeds.rng("topo"));
    let mut sim = VivaldiSim::new(matrix, VivaldiConfig::default(), &seeds);
    sim.run_ticks(120);
    let attackers = sim.pick_attackers(0.25);
    sim.inject_adversary(&attackers, Box::new(VivaldiDisorder::default()));
    sim.deploy_defense(Box::new(DriftCap::new(40.0)));
    sim.run_ticks(80);
    let stats = sim.defense_stats().expect("defense deployed");
    RunFingerprint {
        coord_bits: sim
            .coords()
            .iter()
            .flat_map(|c| c.vec.iter().map(|v| v.to_bits()))
            .collect(),
        accepted: stats.accepted,
        rejected: stats.rejected,
    }
}

fn nps_run(seed: u64) -> RunFingerprint {
    let seeds = SeedStream::new(seed);
    let matrix = KingLike::new(KingLikeConfig::with_nodes(40)).generate(&mut seeds.rng("topo"));
    let mut sim = NpsSim::new(matrix, NpsConfig::default(), &seeds);
    sim.run_ms(600_000);
    let attackers = sim.pick_attackers(0.25);
    sim.inject_adversary(&attackers, Box::new(NpsSimpleDisorder::default()));
    sim.run_ms(600_000);
    RunFingerprint {
        coord_bits: sim
            .coords()
            .iter()
            .flat_map(|c| c.vec.iter().map(|v| v.to_bits()))
            .collect(),
        accepted: sim.counters().positionings,
        rejected: sim.ledger().total(),
    }
}

fn traced<R>(f: impl Fn() -> R) -> (R, obs::ObsReport) {
    obs::set_mode(obs::ObsMode::Trace);
    obs::reset();
    let out = f();
    let report = obs::drain();
    obs::set_mode(obs::ObsMode::Off);
    (out, report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn traced_runs_are_bitwise_identical_to_untraced(seed in 0u64..1000) {
        // Vivaldi, attacked and defended.
        let base = vivaldi_run(seed);
        let (again, report) = traced(|| vivaldi_run(seed));
        prop_assert_eq!(&base, &again, "tracing perturbed the Vivaldi run");
        prop_assert!(!report.is_empty(), "a traced Vivaldi run must record something");
        prop_assert!(
            report.counter(obs::metric("vivaldi.samples_applied")) > 0,
            "the Vivaldi hot path went unobserved"
        );

        // NPS, attacked with its security filter active.
        let base = nps_run(seed);
        let (again, report) = traced(|| nps_run(seed));
        prop_assert_eq!(&base, &again, "tracing perturbed the NPS run");
        prop_assert!(!report.is_empty(), "a traced NPS run must record something");
        prop_assert!(
            report.counter(obs::metric("nps.positionings")) > 0,
            "the NPS positioning path went unobserved"
        );
    }
}
